"""Run-time type information for CCount.

CCount needs to know where the pointers live inside an object in three
situations the paper calls out: when the object is freed (its outgoing
references must be dropped), when it is copied with ``memcpy`` (the copied
pointers create new references) and when it is cleared with ``memset``.

The registry assigns a small integer *type id* to every struct layout and
records the byte offsets of its pointer-typed cells.  The paper reports having
to describe 32 type layouts by hand and add explicit run-time type information
in 27 places; in this reproduction the layouts are extracted automatically
from the parsed corpus, and the explicit RTTI sites are the corpus's calls to
``__ccount_rtti(ptr, TYPEID_xxx)`` after allocations whose static type the
runtime cannot otherwise see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.program import Program
from ..minic.ctypes import CStruct


@dataclass
class TypeLayout:
    """Pointer layout of one struct type."""

    type_id: int
    tag: str
    size: int
    pointer_offsets: tuple[int, ...]

    @property
    def has_pointers(self) -> bool:
        return bool(self.pointer_offsets)


@dataclass
class TypeInfoRegistry:
    """All struct layouts known to the CCount runtime."""

    layouts: dict[int, TypeLayout] = field(default_factory=dict)
    by_tag: dict[str, TypeLayout] = field(default_factory=dict)
    _next_id: int = 1

    def register_struct(self, struct: CStruct) -> TypeLayout:
        key = f"{struct.kind_name} {struct.tag}"
        existing = self.by_tag.get(key)
        if existing is not None:
            return existing
        layout = TypeLayout(
            type_id=self._next_id,
            tag=key,
            size=struct.size if struct.complete else 0,
            pointer_offsets=tuple(struct.pointer_field_offsets()) if struct.complete else (),
        )
        self._next_id += 1
        self.layouts[layout.type_id] = layout
        self.by_tag[key] = layout
        return layout

    def layout(self, type_id: int) -> TypeLayout | None:
        return self.layouts.get(type_id)

    def layout_for_tag(self, tag: str) -> TypeLayout | None:
        return self.by_tag.get(tag)

    def described_types(self) -> int:
        """How many distinct layouts containing pointers were described."""
        return sum(1 for layout in self.layouts.values() if layout.has_pointers)

    def __len__(self) -> int:
        return len(self.layouts)


def build_typeinfo(program: Program) -> TypeInfoRegistry:
    """Extract pointer layouts for every complete struct in ``program``."""
    registry = TypeInfoRegistry()
    for struct in program.registry.structs.values():
        if struct.complete:
            registry.register_struct(struct)
    return registry


def typeid_constants(registry: TypeInfoRegistry) -> dict[str, int]:
    """Preprocessor-style constants (``TYPEID_struct_foo``) for the corpus."""
    constants: dict[str, int] = {}
    for layout in registry.layouts.values():
        name = "TYPEID_" + layout.tag.replace(" ", "_")
        constants[name] = layout.type_id
    return constants
