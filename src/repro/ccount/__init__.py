"""CCount: reference-count verification of manual memory management."""

from .delayed_free import (
    count_delayed_scopes,
    count_pointer_nullouts,
    count_rtti_sites,
    delayed_free_scope,
)
from .instrument import (
    CCountInstrumentationResult,
    CCountInstrumenter,
    instrument_copy,
    instrument_program,
)
from .report import (
    CCountConversionReport,
    CCountRunReport,
    build_conversion_report,
    build_run_report,
)
from .runtime import BadFree, CCountConfig, CCountRuntime, CCountStats, install
from .typeinfo import TypeInfoRegistry, TypeLayout, build_typeinfo, typeid_constants

__all__ = [
    "delayed_free_scope", "count_delayed_scopes", "count_pointer_nullouts",
    "count_rtti_sites",
    "CCountInstrumentationResult", "CCountInstrumenter", "instrument_copy",
    "instrument_program",
    "CCountConversionReport", "CCountRunReport", "build_conversion_report",
    "build_run_report",
    "BadFree", "CCountConfig", "CCountRuntime", "CCountStats", "install",
    "TypeInfoRegistry", "TypeLayout", "build_typeinfo", "typeid_constants",
]
