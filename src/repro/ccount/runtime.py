"""The CCount runtime: chunked reference counts and free checking.

CCount maintains an 8-bit reference count for every 16-byte chunk of memory
(a 6.25% space overhead in the paper; here a side table keyed by chunk index).
Every instrumented pointer write ``*a = b`` performs ``RC(b)++, RC(*a)--``
before the store; when the kernel frees an object the runtime checks that no
chunk of the object still has outstanding references.  A bad free is logged
and — to preserve soundness — the object is leaked instead of released.

Because counts are 8 bits they wrap: an object with exactly ``k * 256``
dangling references is missed, which the paper accepts as vanishingly unlikely
in non-malicious code (an optional overflow check closes the hole; we expose
it as :attr:`CCountConfig.overflow_check`).

The runtime also wraps the machine's raw allocator so that allocated storage
is zeroed (decrementing a random bit pattern's "reference" on first pointer
write would corrupt the table) — the paper's first required kernel change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.errors import CheckFailure
from ..machine.interpreter import Interpreter
from ..machine.memory import BLOCK_ALIGN, chunk_range
from ..machine.values import TypedValue, VOID_VALUE, int_value, pointer_value
from ..minic.ctypes import UINT, VOID, pointer_to
from .typeinfo import TypeInfoRegistry


@dataclass
class CCountConfig:
    """Configuration knobs for the CCount runtime."""

    track_locals: bool = False       # paper footnote 2: kernel CCount does not
    leak_on_bad_free: bool = True    # paper: "optionally leak to guarantee soundness"
    overflow_check: bool = False     # paper: "for total safety"
    panic_on_bad_free: bool = False  # strict mode used by some tests


@dataclass
class BadFree:
    """One rejected deallocation."""

    addr: int
    outstanding: int
    location: str
    leaked: bool


@dataclass
class CCountStats:
    """Counters the §2.2 evaluation reports."""

    total_frees: int = 0
    good_frees: int = 0
    bad_frees: list[BadFree] = field(default_factory=list)
    rc_increments: int = 0
    rc_decrements: int = 0
    delayed_scopes: int = 0
    delayed_frees: int = 0
    rtti_sites: int = 0
    typed_memcpy: int = 0
    typed_memset: int = 0
    allocations: int = 0

    @property
    def bad_free_count(self) -> int:
        return len(self.bad_frees)

    @property
    def good_fraction(self) -> float:
        if self.total_frees == 0:
            return 1.0
        return self.good_frees / self.total_frees


class CCountRuntime:
    """The reference-counting state machine attached to one interpreter."""

    def __init__(self, interp: Interpreter, typeinfo: TypeInfoRegistry | None = None,
                 config: CCountConfig | None = None) -> None:
        self.interp = interp
        self.typeinfo = typeinfo or TypeInfoRegistry()
        self.config = config or CCountConfig()
        self.stats = CCountStats()
        self.refcounts: dict[int, int] = {}
        self.block_types: dict[int, int] = {}      # block base -> type id
        self._delayed_stack: list[list[tuple[int, str]]] = []
        self._install()

    # ------------------------------------------------------------------
    # Reference count primitives
    # ------------------------------------------------------------------

    def _rc_add(self, addr: int, delta: int) -> None:
        if addr == 0:
            return
        block = self.interp.memory.find_block(addr)
        if block is None or block.kind not in ("heap",):
            # Only heap objects are subject to free checking; counting
            # references into globals or the stack would only add noise.
            return
        chunk = addr // BLOCK_ALIGN
        new = (self.refcounts.get(chunk, 0) + delta) & 0xFF
        if self.config.overflow_check and delta > 0 and new == 0:
            raise CheckFailure(
                f"reference count overflow on chunk 0x{chunk * BLOCK_ALIGN:x}",
                tool="ccount")
        self.refcounts[chunk] = new

    def rc_inc(self, addr: int) -> None:
        self.stats.rc_increments += 1
        self.interp.counter.charge("rc_update", cycles=self.interp.counter.model.rc_cost())
        self._rc_add(addr, 1)

    def rc_dec(self, addr: int) -> None:
        self.stats.rc_decrements += 1
        self.interp.counter.charge("rc_update", cycles=self.interp.counter.model.rc_cost())
        self._rc_add(addr, -1)

    def object_refcount(self, base: int, size: int) -> int:
        """Outstanding references into any chunk of the object at ``base``."""
        return sum(self.refcounts.get(chunk, 0) for chunk in chunk_range(base, size))

    # ------------------------------------------------------------------
    # Allocation / free hooks
    # ------------------------------------------------------------------

    def on_alloc(self, addr: int, size: int) -> None:
        """Zero the new object and clear any stale chunk counts."""
        self.stats.allocations += 1
        self.interp.counter.charge(
            "rc_zero_per_word", times=max(1, (size + 3) // 4))
        self.interp.memory.memset(addr, 0, size)
        for chunk in chunk_range(addr, size):
            self.refcounts[chunk] = 0

    def check_free(self, addr: int, location: str = "") -> bool:
        """Validate a free; returns True when the storage may be released."""
        if addr == 0:
            return False
        if self._delayed_stack:
            self._delayed_stack[-1].append((addr, location))
            self.stats.delayed_frees += 1
            return False
        return self._do_check_free(addr, location)

    def _do_check_free(self, addr: int, location: str) -> bool:
        memory = self.interp.memory
        block = memory.find_block(addr)
        if block is None or block.freed:
            # Let the machine produce its usual double-free/wild-free fault.
            return True
        self.stats.total_frees += 1
        self.interp.counter.charge(
            "rc_free_check_per_chunk",
            times=max(1, len(list(chunk_range(block.base, block.size)))))
        outstanding = self.object_refcount(block.base, block.size)
        if outstanding == 0:
            self.stats.good_frees += 1
            self._drop_outgoing_references(block.base)
            for chunk in chunk_range(block.base, block.size):
                self.refcounts.pop(chunk, None)
            return True
        bad = BadFree(addr=block.base, outstanding=outstanding, location=location,
                      leaked=self.config.leak_on_bad_free)
        self.stats.bad_frees.append(bad)
        self.interp.console.append(
            f"ccount: bad free of 0x{block.base:x} ({outstanding} outstanding "
            f"references) at {location or 'unknown site'}\n")
        if self.config.panic_on_bad_free:
            raise CheckFailure(
                f"bad free of 0x{block.base:x} with {outstanding} outstanding references",
                tool="ccount")
        # Leaking keeps every outstanding pointer valid (soundness), at the
        # cost of memory; returning False tells the allocator not to release.
        return not self.config.leak_on_bad_free

    def _drop_outgoing_references(self, base: int) -> None:
        """When an object dies, release the references its pointer fields hold."""
        type_id = self.block_types.pop(base, None)
        if type_id is None:
            return
        layout = self.typeinfo.layout(type_id)
        if layout is None:
            return
        for offset in layout.pointer_offsets:
            target = self.interp.memory.load(base + offset, 4)
            if target:
                self._rc_add(target, -1)

    # ------------------------------------------------------------------
    # Delayed free scopes
    # ------------------------------------------------------------------

    def delay_begin(self) -> None:
        self.stats.delayed_scopes += 1
        self._delayed_stack.append([])

    def delay_end(self) -> None:
        if not self._delayed_stack:
            return
        pending = self._delayed_stack.pop()
        for addr, location in pending:
            if self._do_check_free(addr, location):
                block = self.interp.memory.find_block(addr)
                if block is not None and not block.freed:
                    self.interp.memory.free(block)

    # ------------------------------------------------------------------
    # Typed bulk operations
    # ------------------------------------------------------------------

    def typed_memcpy(self, dst: int, src: int, size: int, type_id: int) -> None:
        self.stats.typed_memcpy += 1
        layout = self.typeinfo.layout(type_id)
        if layout is not None:
            for offset in layout.pointer_offsets:
                if offset + 4 <= size:
                    old = self.interp.memory.load(dst + offset, 4)
                    new = self.interp.memory.load(src + offset, 4)
                    if old:
                        self.rc_dec(old)
                    if new:
                        self.rc_inc(new)
        self.interp.memory.memcpy(dst, src, size)

    def typed_memset(self, dst: int, value: int, size: int, type_id: int) -> None:
        self.stats.typed_memset += 1
        layout = self.typeinfo.layout(type_id)
        if layout is not None and value == 0:
            for offset in layout.pointer_offsets:
                if offset + 4 <= size:
                    old = self.interp.memory.load(dst + offset, 4)
                    if old:
                        self.rc_dec(old)
        self.interp.memory.memset(dst, value, size)

    def set_rtti(self, addr: int, type_id: int) -> None:
        self.stats.rtti_sites += 1
        block = self.interp.memory.find_block(addr)
        if block is not None:
            self.block_types[block.base] = type_id

    # ------------------------------------------------------------------
    # Builtin registration
    # ------------------------------------------------------------------

    def _install(self) -> None:
        interp = self.interp
        runtime = self

        def ptr_write(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
            slot = args[0].as_int()
            new_value = args[1].as_int()
            old_value = interp.memory.load(slot, 4) if interp.memory.is_valid(slot, 4) else 0
            # Increment before decrement to avoid transitory zero counts
            # (the ordering constraint §2.2 calls out for concurrent code).
            runtime.rc_inc(new_value)
            runtime.rc_dec(old_value)
            interp.counter.charge("store")
            interp.memory.store(slot, 4, new_value)
            return pointer_value(new_value, args[1].ctype)

        def rc_inc(interp, args, loc):
            runtime.rc_inc(args[0].as_int())
            return VOID_VALUE

        def rc_dec(interp, args, loc):
            runtime.rc_dec(args[0].as_int())
            return VOID_VALUE

        def raw_alloc(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
            size = args[0].as_int()
            interp.counter.charge("alloc")
            block = interp.memory.alloc(size, kind="heap", alloc_site=str(loc))
            runtime.on_alloc(block.base, size)
            return pointer_value(block.base, pointer_to(VOID))

        def raw_free(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
            addr = args[0].as_int()
            interp.counter.charge("free")
            if addr == 0:
                return VOID_VALUE
            if runtime.check_free(addr, str(loc)):
                interp.memory.free_addr(addr)
            return VOID_VALUE

        def delay_begin(interp, args, loc):
            runtime.delay_begin()
            return VOID_VALUE

        def delay_end(interp, args, loc):
            runtime.delay_end()
            return VOID_VALUE

        def memcpy_typed(interp, args, loc):
            runtime.typed_memcpy(args[0].as_int(), args[1].as_int(),
                                 args[2].as_int(), args[3].as_int())
            interp.counter.charge("bulk_per_word",
                                  times=max(1, (args[2].as_int() + 3) // 4))
            return args[0]

        def memset_typed(interp, args, loc):
            runtime.typed_memset(args[0].as_int(), args[1].as_int(),
                                 args[2].as_int(), args[3].as_int())
            interp.counter.charge("bulk_per_word",
                                  times=max(1, (args[2].as_int() + 3) // 4))
            return args[0]

        def rtti(interp, args, loc):
            # The second argument is either a numeric type id or a pointer to
            # a type-name string ("struct kmem_cache"); the corpus uses the
            # string form because type ids are assigned by the tool, not the
            # programmer.
            raw = args[1].as_int()
            type_id = raw
            if args[1].ctype.strip().is_pointer() or raw > 0xFFFF:
                try:
                    tag = interp.memory.load_cstring(raw)
                except Exception:
                    tag = ""
                layout = runtime.typeinfo.layout_for_tag(tag)
                type_id = layout.type_id if layout is not None else 0
            runtime.set_rtti(args[0].as_int(), type_id)
            return VOID_VALUE

        def refcount_of(interp, args, loc):
            addr = args[0].as_int()
            block = interp.memory.find_block(addr)
            if block is None:
                return int_value(0, UINT)
            return int_value(runtime.object_refcount(block.base, block.size), UINT)

        interp.register_builtin("__ccount_ptr_write", ptr_write)
        interp.register_builtin("__ccount_rc_inc", rc_inc)
        interp.register_builtin("__ccount_rc_dec", rc_dec)
        interp.register_builtin("__raw_alloc", raw_alloc)
        interp.register_builtin("__raw_free", raw_free)
        interp.register_builtin("__ccount_delay_begin", delay_begin)
        interp.register_builtin("__ccount_delay_end", delay_end)
        interp.register_builtin("__ccount_memcpy", memcpy_typed)
        interp.register_builtin("__ccount_memset", memset_typed)
        interp.register_builtin("__ccount_rtti", rtti)
        interp.register_builtin("__ccount_refcount", refcount_of)


def install(interp: Interpreter, typeinfo: TypeInfoRegistry | None = None,
            config: CCountConfig | None = None) -> CCountRuntime:
    """Attach a CCount runtime to ``interp`` and return it."""
    return CCountRuntime(interp, typeinfo, config)
