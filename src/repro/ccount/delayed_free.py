"""Delayed free scopes.

A *delayed free scope* postpones every free (and its reference-count check)
issued inside the scope until the scope ends.  The paper introduces these to
simplify freeing complex or cyclic data structures: tearing down a doubly
linked list frees nodes that still point at each other, which would otherwise
be reported as bad frees one by one; deferring the checks to the end of the
scope lets the whole structure disappear at once.

The scopes themselves live in :class:`repro.ccount.runtime.CCountRuntime`
(``delay_begin``/``delay_end``, driven from MiniC by the
``__ccount_delay_begin``/``__ccount_delay_end`` builtins).  This module adds
two conveniences:

* a Python context manager for tests, examples and harness code;
* a static census of the delayed-free scopes present in a converted program
  (the paper reports adding 26 of them to the kernel).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.visitor import walk
from .runtime import CCountRuntime

#: Free routines whose callers the null-out census looks inside.
FREE_ROUTINES = ("kfree", "kmem_cache_free", "__raw_free",
                 "free_skb", "put_task")


@contextmanager
def delayed_free_scope(runtime: CCountRuntime) -> Iterator[None]:
    """Run a Python block inside a CCount delayed-free scope."""
    runtime.delay_begin()
    try:
        yield
    finally:
        runtime.delay_end()


def _count_calls_named(nodes: Iterable[ast.Node], name: str) -> int:
    count = 0
    for root in nodes:
        for node in walk(root):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                    and node.func.name == name):
                count += 1
    return count


def count_delayed_scopes_in(nodes: Iterable[ast.Node]) -> int:
    """Delayed-free scopes within the given AST roots (units or decls)."""
    return _count_calls_named(nodes, "__ccount_delay_begin")


def count_delayed_scopes(program: Program) -> int:
    """How many delayed-free scopes the converted source contains."""
    return count_delayed_scopes_in(program.units)


def count_rtti_sites_in(nodes: Iterable[ast.Node]) -> int:
    """Explicit RTTI sites within the given AST roots (units or decls)."""
    return _count_calls_named(nodes, "__ccount_rtti")


def count_rtti_sites(program: Program) -> int:
    """How many explicit run-time type information sites the source contains."""
    return count_rtti_sites_in(program.units)


def count_pointer_nullouts_in(functions: Iterable[ast.FuncDef]) -> int:
    """The null-out census over an explicit set of function definitions.

    Functions are independent — a function counts only if it itself calls a
    free routine — so the engine's per-unit shards sum to the whole-program
    census by construction.
    """
    nullouts = 0
    for func in functions:
        calls_free = False
        for node in walk(func):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                    and node.func.name in FREE_ROUTINES):
                calls_free = True
                break
        if not calls_free:
            continue
        for node in walk(func):
            if (isinstance(node, ast.Assign) and node.op == "="
                    and isinstance(node.value, ast.IntLit) and node.value.value == 0
                    and not isinstance(node.target, ast.Ident)):
                nullouts += 1
    return nullouts


def count_pointer_nullouts(program: Program) -> int:
    """Count assignments that null out a pointer before/after a free.

    The paper reports 27 "null out some extra pointers" fixes; in the corpus
    these are the ``x = 0;`` / ``x->field = 0;`` statements the converted code
    adds around frees.  We approximate the census by counting assignments of
    the integer literal 0 to pointer-typed lvalues inside functions that also
    call a free routine.
    """
    return count_pointer_nullouts_in(
        func for _, func in _functions(program))


def _functions(program: Program):
    for unit in program.units:
        for decl in unit.decls:
            if isinstance(decl, ast.FuncDef):
                yield decl.name, decl
