"""Delayed free scopes.

A *delayed free scope* postpones every free (and its reference-count check)
issued inside the scope until the scope ends.  The paper introduces these to
simplify freeing complex or cyclic data structures: tearing down a doubly
linked list frees nodes that still point at each other, which would otherwise
be reported as bad frees one by one; deferring the checks to the end of the
scope lets the whole structure disappear at once.

The scopes themselves live in :class:`repro.ccount.runtime.CCountRuntime`
(``delay_begin``/``delay_end``, driven from MiniC by the
``__ccount_delay_begin``/``__ccount_delay_end`` builtins).  This module adds
two conveniences:

* a Python context manager for tests, examples and harness code;
* a static census of the delayed-free scopes present in a converted program
  (the paper reports adding 26 of them to the kernel).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.visitor import walk
from .runtime import CCountRuntime


@contextmanager
def delayed_free_scope(runtime: CCountRuntime) -> Iterator[None]:
    """Run a Python block inside a CCount delayed-free scope."""
    runtime.delay_begin()
    try:
        yield
    finally:
        runtime.delay_end()


def count_delayed_scopes(program: Program) -> int:
    """How many delayed-free scopes the converted source contains."""
    begins = 0
    for unit in program.units:
        for node in walk(unit):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                    and node.func.name == "__ccount_delay_begin"):
                begins += 1
    return begins


def count_rtti_sites(program: Program) -> int:
    """How many explicit run-time type information sites the source contains."""
    sites = 0
    for unit in program.units:
        for node in walk(unit):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                    and node.func.name == "__ccount_rtti"):
                sites += 1
    return sites


def count_pointer_nullouts(program: Program) -> int:
    """Count assignments that null out a pointer before/after a free.

    The paper reports 27 "null out some extra pointers" fixes; in the corpus
    these are the ``x = 0;`` / ``x->field = 0;`` statements the converted code
    adds around frees.  We approximate the census by counting assignments of
    the integer literal 0 to pointer-typed lvalues inside functions that also
    call a free routine.
    """
    free_callers: set[str] = set()
    for name, func in _functions(program):
        for node in walk(func):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                    and node.func.name in ("kfree", "kmem_cache_free", "__raw_free",
                                           "free_skb", "put_task")):
                free_callers.add(name)
                break
    nullouts = 0
    for name, func in _functions(program):
        if name not in free_callers:
            continue
        for node in walk(func):
            if (isinstance(node, ast.Assign) and node.op == "="
                    and isinstance(node.value, ast.IntLit) and node.value.value == 0
                    and not isinstance(node.target, ast.Ident)):
                nullouts += 1
    return nullouts


def _functions(program: Program):
    for unit in program.units:
        for decl in unit.decls:
            if isinstance(decl, ast.FuncDef):
                yield decl.name, decl
