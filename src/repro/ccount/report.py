"""CCount conversion and run-time reports (the §2.2 numbers)."""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.program import Program
from .delayed_free import count_delayed_scopes, count_pointer_nullouts, count_rtti_sites
from .instrument import CCountInstrumentationResult
from .runtime import CCountRuntime, CCountStats


@dataclass
class CCountConversionReport:
    """Static census of the CCount conversion of a program."""

    types_described: int = 0
    rtti_sites: int = 0
    bulk_calls_converted: int = 0
    delayed_scopes: int = 0
    pointer_nullouts: int = 0
    pointer_writes_instrumented: int = 0
    pointer_writes_skipped_local: int = 0

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("type layouts described", str(self.types_described)),
            ("explicit RTTI sites", str(self.rtti_sites)),
            ("memset/memcpy made type-aware", str(self.bulk_calls_converted)),
            ("delayed free scopes", str(self.delayed_scopes)),
            ("pointers nulled around frees", str(self.pointer_nullouts)),
            ("pointer writes instrumented", str(self.pointer_writes_instrumented)),
            ("local pointer writes skipped", str(self.pointer_writes_skipped_local)),
        ]

    def __str__(self) -> str:
        return "\n".join(f"{key:>32}: {value}" for key, value in self.rows())


@dataclass
class CCountRunReport:
    """Dynamic results of running a workload under the CCount runtime."""

    stats: CCountStats
    workload: str = ""

    @property
    def total_frees(self) -> int:
        return self.stats.total_frees

    @property
    def good_frees(self) -> int:
        return self.stats.good_frees

    @property
    def bad_frees(self) -> int:
        return self.stats.bad_free_count

    @property
    def good_fraction(self) -> float:
        return self.stats.good_fraction

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("workload", self.workload or "(unnamed)"),
            ("frees checked", str(self.total_frees)),
            ("good frees", str(self.good_frees)),
            ("bad frees", str(self.bad_frees)),
            ("good fraction", f"{self.good_fraction:.2%}"),
            ("rc increments", str(self.stats.rc_increments)),
            ("rc decrements", str(self.stats.rc_decrements)),
            ("delayed scopes entered", str(self.stats.delayed_scopes)),
            ("frees deferred by scopes", str(self.stats.delayed_frees)),
        ]

    def __str__(self) -> str:
        return "\n".join(f"{key:>32}: {value}" for key, value in self.rows())


def build_conversion_report(program: Program,
                            instrumentation: CCountInstrumentationResult) -> CCountConversionReport:
    """Compute the static CCount conversion census for ``program``."""
    return CCountConversionReport(
        types_described=instrumentation.typeinfo.described_types(),
        rtti_sites=count_rtti_sites(program),
        bulk_calls_converted=instrumentation.bulk_calls_converted,
        delayed_scopes=count_delayed_scopes(program),
        pointer_nullouts=count_pointer_nullouts(program),
        pointer_writes_instrumented=instrumentation.pointer_writes_instrumented,
        pointer_writes_skipped_local=instrumentation.pointer_writes_skipped_local,
    )


def build_run_report(runtime: CCountRuntime, workload: str = "") -> CCountRunReport:
    """Wrap a runtime's statistics into a report."""
    return CCountRunReport(stats=runtime.stats, workload=workload)
