"""The CCount instrumenter: rewrite pointer writes to maintain counts.

The paper describes CCount's compiler pass as rewriting every pointer write
``*a = b`` into ``RC(b)++, RC(*a)--, *a = b``.  This instrumenter performs the
same rewrite at the source level by replacing the assignment with a call to
the runtime builtin ``__ccount_ptr_write(&lvalue, value)``, which performs the
increment-before-decrement update and the store itself.

Two further rewrites reproduce the manual conversion work §2.2 reports:

* calls to ``memcpy``/``memset`` whose destination is an object containing
  pointers become the type-aware ``__ccount_memcpy``/``__ccount_memset``
  (the paper changed 50 such uses by hand);
* the instrumenter records, per function, how many pointer-write sites were
  instrumented and how many were skipped because they target local variables
  (footnote 2: the kernel version of CCount does not track references from
  locals).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..deputy.typesystem import TypeEnv
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.ctypes import CArray, CPointer, CStruct, CType
from ..minic.visitor import Transformer
from .runtime import CCountConfig
from .typeinfo import TypeInfoRegistry, build_typeinfo

#: Functions whose destination argument is copied/cleared in a type-aware way.
BULK_FUNCTIONS = {"memcpy": "__ccount_memcpy", "memmove": "__ccount_memcpy",
                  "memset": "__ccount_memset"}


@dataclass
class CCountInstrumentationResult:
    """Summary of one CCount instrumentation run."""

    program: Program
    typeinfo: TypeInfoRegistry
    pointer_writes_instrumented: int = 0
    pointer_writes_skipped_local: int = 0
    bulk_calls_converted: int = 0
    per_function: dict[str, int] = field(default_factory=dict)


class CCountInstrumenter:
    """Instrument every function of a program for reference counting."""

    def __init__(self, program: Program, config: CCountConfig | None = None,
                 typeinfo: TypeInfoRegistry | None = None) -> None:
        self.program = program
        self.config = config or CCountConfig()
        self.typeinfo = typeinfo or build_typeinfo(program)
        self.result = CCountInstrumentationResult(program=program, typeinfo=self.typeinfo)

    def run(self) -> CCountInstrumentationResult:
        for unit in self.program.units:
            for decl in unit.decls:
                if isinstance(decl, ast.FuncDef):
                    self._do_function(decl)
        return self.result

    def instrument_function(self, func: ast.FuncDef) -> None:
        """Instrument one function in place (it need not be in ``program``;
        the engine's per-unit shards pass private clones)."""
        self._do_function(func)

    def _do_function(self, func: ast.FuncDef) -> None:
        env = TypeEnv(self.program, func)
        rewriter = _PointerWriteRewriter(self, env)
        func.body = rewriter.visit(func.body)
        self.result.per_function[func.name] = rewriter.instrumented


class _PointerWriteRewriter(Transformer):
    """AST transformer that performs the pointer-write and bulk-call rewrites."""

    def __init__(self, owner: CCountInstrumenter, env: TypeEnv) -> None:
        self.owner = owner
        self.env = env
        self.instrumented = 0

    # -- pointer writes -------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> ast.Expr:
        target_type = self.env.type_of(node.target).strip()
        if not isinstance(target_type, CPointer):
            return node
        if self._is_untracked_local(node.target):
            self.owner.result.pointer_writes_skipped_local += 1
            return node
        value: ast.Expr = node.value
        if node.op != "=":
            # Compound pointer arithmetic (p += n) still moves the pointer to
            # a different chunk, so rebuild the full new value expression.
            value = ast.Binary(op=node.op[:-1], left=copy.deepcopy(node.target),
                               right=node.value, location=node.location)
        call = ast.make_call(
            "__ccount_ptr_write",
            [ast.Unary(op="&", operand=node.target, location=node.location), value],
            node.location)
        self.instrumented += 1
        self.owner.result.pointer_writes_instrumented += 1
        return call

    def _is_untracked_local(self, target: ast.Expr) -> bool:
        """Writes to plain local pointer variables are skipped (footnote 2)."""
        if self.owner.config.track_locals:
            return False
        if not isinstance(target, ast.Ident):
            return False
        if self.env.program.globals.get(target.name) is not None:
            return False
        return target.name in self.env.locals

    # -- type-aware bulk operations --------------------------------------------

    def visit_Call(self, node: ast.Call) -> ast.Expr:
        if not isinstance(node.func, ast.Ident):
            return node
        replacement = BULK_FUNCTIONS.get(node.func.name)
        if replacement is None or len(node.args) < 3:
            return node
        layout = self._destination_layout(node.args[0])
        if layout is None or not layout.has_pointers:
            return node
        self.owner.result.bulk_calls_converted += 1
        return ast.Call(
            func=ast.Ident(name=replacement, location=node.func.location),
            args=[*node.args, ast.int_lit(layout.type_id, node.location)],
            location=node.location)

    def _destination_layout(self, dst: ast.Expr):
        dst_type = self.env.type_of(dst).strip()
        target: CType | None = None
        if isinstance(dst_type, CPointer):
            target = dst_type.target.strip()
        elif isinstance(dst_type, CArray):
            target = dst_type.element.strip()
        if isinstance(target, CStruct) and target.complete:
            return self.owner.typeinfo.register_struct(target)
        return None


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def instrument_program(program: Program, config: CCountConfig | None = None,
                       typeinfo: TypeInfoRegistry | None = None) -> CCountInstrumentationResult:
    """Instrument ``program`` in place for CCount."""
    return CCountInstrumenter(program, config, typeinfo).run()


def instrument_copy(program: Program,
                    config: CCountConfig | None = None) -> CCountInstrumentationResult:
    """Instrument a deep copy of ``program``, leaving the original untouched."""
    clone = copy.deepcopy(program)
    return CCountInstrumenter(clone, config).run()
