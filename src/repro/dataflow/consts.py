"""Constant propagation with branch-edge refinement over the shared CFG.

This is the condition-aware half of the dataflow core: every checker in the
repro runs a lattice over :mod:`repro.dataflow.cfg` graphs, and until this
module existed all of them treated branch conditions as opaque — an
``if (0)`` arm was joined into the merge state exactly like a live arm, so
config-gated kernel idioms (``#define DEBUG 0`` slow paths, ``do { } while
(0)`` wrappers, constant-guarded debug branches) produced findings from code
that provably never runs.

The lattice here is the classic constant-propagation one, per variable:
⊥ (unreachable, the solver's ``None``) / *const* (a known integer) /
⊤ (unknown, represented by absence from the environment).  An environment
maps the function's *trackable* names — scalar parameters and locals whose
address is never taken, the only storage no call or pointer store can write
— to known integer values; the join at merge points is intersection of
agreeing bindings.  ``#define`` constants need no special handling: the
preprocessor folds object-like macros before parsing, so a folded name
arrives here as the literal it expands to, and locals *initialized from*
folded names (``int want = -EINVAL;``) are carried by the environment.

On top of the per-block solve, CFG **edges** are refined:

* the branch edges of ``if``/``while``/``do``/``for`` conditions gain
  *condition facts* — the true edge of ``if (x == 0)`` knows ``x = 0``, the
  false edge of ``if (x != 3)`` knows ``x = 3``, ``case`` edges know the
  scrutinee's value;
* an edge whose condition evaluates to a constant that contradicts the
  branch (``if (0)``'s true edge, ``while (0)``'s body edge, the ``case 2``
  edge of ``switch (1)``) is marked **infeasible**: the solver never
  propagates state across it, so the dead arm stays at ⊥ and its effects
  never reach the merge.

Client lattices (lockcheck's multiset, blockstop's disable depth, errcheck's
pending obligations, the summary sweep) consume the result as a *reduced
product*: the constant component is solved once per function, cached by the
engine, and re-applied as an edge filter (:func:`refined_edges`) to every
client solve — equivalent to running the product lattice directly, because
the constant component never depends on any client component.

Known imprecision, on purpose: facts are non-relational (``x == y`` refines
nothing), globals and address-taken locals are never tracked (a callee could
write them), casts are value-transparent (no truncation modelling), and a
condition containing an assignment or ``++``/``--`` contributes no facts
(the tested value and the post-condition value differ).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from ..minic import ast_nodes as ast
from ..minic.visitor import iter_child_nodes, walk
from .cfg import CFG, BasicBlock, Edge, build_cfg
from .solver import INFEASIBLE, solve_forward

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.program import Program

#: A constant environment: trackable name -> known integer value.  Absence
#: means ⊤ (unknown); the whole-env ⊥ is the solver's ``None``.
ConstEnv = dict

#: Canonical (hashable, deterministic) form of an environment for storage.
FrozenEnv = tuple[tuple[str, int], ...]


def freeze_env(env: Mapping[str, int]) -> FrozenEnv:
    return tuple(sorted(env.items()))


def join_envs(a: ConstEnv, b: ConstEnv) -> ConstEnv:
    """Lattice join: keep only the bindings both environments agree on."""
    if a == b:
        return a
    return {name: value for name, value in a.items() if b.get(name) == value}


# ---------------------------------------------------------------------------
# Expression folding
# ---------------------------------------------------------------------------

_EMPTY_ENV: ConstEnv = {}


def _c_div(a: int, b: int) -> Optional[int]:
    if b == 0:
        return None
    quotient = abs(a) // abs(b)
    return quotient if (a < 0) == (b < 0) else -quotient


def _c_mod(a: int, b: int) -> Optional[int]:
    quotient = _c_div(a, b)
    return None if quotient is None else a - quotient * b


def eval_const(expr: Optional[ast.Expr], env: Mapping[str, int] = _EMPTY_ENV) -> Optional[int]:
    """Fold ``expr`` to an integer under ``env``, or ``None`` when unknown.

    Handles the full integer-expression surface of MiniC: literals, tracked
    identifiers, unary ``- ! ~``, binary arithmetic/bitwise/shift/comparison
    /logical operators, the ternary operator, casts (value-transparent) and
    the comma operator.  Assignments, increments, calls and memory reads are
    never folded — their values are the transfer function's business.
    """
    if expr is None:
        return None
    if isinstance(expr, (ast.IntLit, ast.CharLit)):
        return expr.value
    if isinstance(expr, ast.Ident):
        return env.get(expr.name)
    if isinstance(expr, ast.Unary):
        if expr.op not in ("-", "!", "~"):
            return None
        value = eval_const(expr.operand, env)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return int(value == 0)
        return ~value
    if isinstance(expr, ast.Binary):
        left = eval_const(expr.left, env)
        if left is None:
            return None
        # C short-circuit semantics: a decided left operand answers alone
        # (the right side may be non-constant, or divide by zero, etc.).
        if expr.op == "&&" and left == 0:
            return 0
        if expr.op == "||" and left != 0:
            return 1
        right = eval_const(expr.right, env)
        if right is None:
            return None
        return _fold_binary(expr.op, left, right)
    if isinstance(expr, ast.Conditional):
        cond = eval_const(expr.cond, env)
        if cond is not None:
            return eval_const(expr.then if cond else expr.otherwise, env)
        then = eval_const(expr.then, env)
        if then is not None and then == eval_const(expr.otherwise, env):
            return then
        return None
    if isinstance(expr, ast.Cast):
        return eval_const(expr.operand, env)
    if isinstance(expr, ast.Comma):
        if not expr.exprs or _has_side_effects(expr):
            return None
        return eval_const(expr.exprs[-1], env)
    if isinstance(expr, ast.SizeofType):
        try:
            from ..machine.interpreter import ctype_size

            return ctype_size(expr.of_type)
        except Exception:
            return None
    return None


def _fold_binary(op: str, left: int, right: int) -> Optional[int]:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return _c_div(left, right)
    if op == "%":
        return _c_mod(left, right)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right if 0 <= right < 64 else None
    if op == ">>":
        return left >> right if 0 <= right < 64 else None
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    return None


# ---------------------------------------------------------------------------
# Trackable names and the environment transfer
# ---------------------------------------------------------------------------


def trackable_names(func: ast.FuncDef) -> frozenset[str]:
    """Names whose value only this function's own assignments can change.

    Scalar parameters and locals qualify unless their address is taken
    (``&x``, or ``&x.f`` / ``&x[0]`` through the base) — an escaped local,
    any array (it decays to a pointer at first use), and every global can be
    written through a pointer or by a callee, so binding them would be
    unsound across calls and stores.  A name declared more than once
    (a shadowing inner-scope local, or a local shadowing a parameter) is
    also dropped: the environment is keyed by bare name, so it cannot tell
    the two storage locations apart.
    """
    from ..minic.ctypes import CArray

    def base_ident(expr: ast.Expr) -> Optional[str]:
        while isinstance(expr, (ast.Member, ast.Index)):
            expr = expr.base
        if isinstance(expr, ast.Cast):
            return base_ident(expr.operand)
        return expr.name if isinstance(expr, ast.Ident) else None

    names = {
        param.name
        for param in getattr(func.type.strip(), "params", [])
        if getattr(param, "name", None)
    }
    escaped: set[str] = set()
    for node in walk(func.body):
        if isinstance(node, ast.Declaration) and node.name and not node.is_typedef:
            if node.name in names:
                escaped.add(node.name)  # shadowed: ambiguous by name
            elif isinstance(node.type.strip(), CArray):
                escaped.add(node.name)
            else:
                names.add(node.name)
        elif isinstance(node, ast.Unary) and node.op == "&":
            name = base_ident(node.operand)
            if name is not None:
                escaped.add(name)
    return frozenset(names - escaped)


def _has_side_effects(expr: ast.Expr) -> bool:
    """Whether ``expr`` contains an assignment or an increment/decrement."""
    for node in walk(expr):
        if isinstance(node, ast.Assign):
            return True
        if isinstance(node, (ast.Postfix, ast.Unary)) and node.op in ("++", "--"):
            return True
    return False


def transfer_expr(env: ConstEnv, expr: Optional[ast.Expr], safe: frozenset[str]) -> ConstEnv:
    """Apply the assignment effects of ``expr`` to ``env`` (copy-on-write).

    Only assignments and ``++``/``--`` on trackable names move the
    environment; calls and pointer stores cannot touch trackable storage, so
    they are no-ops by construction.  The recursion follows C evaluation
    order, and — crucially for soundness — an assignment that only *may*
    execute (the right operand of ``&&``/``||`` with an unknown left, either
    arm of a ternary with an unknown condition) is joined with the
    not-executed environment rather than applied unconditionally.
    """
    if expr is None:
        return env
    if isinstance(expr, ast.Assign):
        env = transfer_expr(env, expr.value, safe)
        if not isinstance(expr.target, ast.Ident):
            return transfer_expr(env, expr.target, safe)
        name = expr.target.name
        if name not in safe:
            return env
        if expr.op == "=":
            value = eval_const(expr.value, env)
        else:
            current = env.get(name)
            rhs = eval_const(expr.value, env)
            if current is None or rhs is None:
                value = None
            else:
                value = _fold_binary(expr.op.rstrip("="), current, rhs)
        return _bind(env, name, value)
    if isinstance(expr, (ast.Postfix, ast.Unary)) and expr.op in ("++", "--"):
        if isinstance(expr.operand, ast.Ident):
            name = expr.operand.name
            if name not in safe:
                return env
            current = env.get(name)
            delta = 1 if expr.op == "++" else -1
            return _bind(env, name, None if current is None else current + delta)
        return transfer_expr(env, expr.operand, safe)
    if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
        env = transfer_expr(env, expr.left, safe)
        left = eval_const(expr.left, env)
        if left is not None:
            runs = (left != 0) if expr.op == "&&" else (left == 0)
            return transfer_expr(env, expr.right, safe) if runs else env
        return join_envs(env, transfer_expr(env, expr.right, safe))
    if isinstance(expr, ast.Conditional):
        env = transfer_expr(env, expr.cond, safe)
        cond = eval_const(expr.cond, env)
        if cond is not None:
            taken = expr.then if cond else expr.otherwise
            return transfer_expr(env, taken, safe)
        then_env = transfer_expr(env, expr.then, safe)
        else_env = transfer_expr(env, expr.otherwise, safe)
        return join_envs(then_env, else_env)
    for child in iter_child_nodes(expr):
        if isinstance(child, ast.Expr):
            env = transfer_expr(env, child, safe)
    return env


def _bind(env: ConstEnv, name: str, value: Optional[int]) -> ConstEnv:
    out = dict(env)
    if value is None:
        out.pop(name, None)
    else:
        out[name] = value
    return out


def _transfer_element(env: ConstEnv, element, safe: frozenset[str]) -> ConstEnv:
    env = transfer_expr(env, element.expr, safe)
    decl = element.decl
    if (
        decl is not None
        and decl.name in safe
        and decl.init is not None
        and not decl.init.is_list
        and decl.init.expr is element.expr
    ):
        env = _bind(env, decl.name, eval_const(element.expr, env))
    return env


# ---------------------------------------------------------------------------
# Branch-edge refinement
# ---------------------------------------------------------------------------

#: Sorted (name, value) facts one refined edge contributes.
EdgeFacts = tuple[tuple[str, int], ...]


def condition_facts(
    cond: ast.Expr, branch_true: bool, env: Mapping[str, int], safe: frozenset[str]
) -> "EdgeFacts | object":
    """Facts the ``branch_true`` edge of ``cond`` establishes, or INFEASIBLE.

    A condition with embedded side effects contributes nothing: the tested
    value and the value the variable holds after the condition ran can
    differ (``if (x++)``), so neither infeasibility nor bindings are sound
    to derive from the post-transfer environment.
    """
    if _has_side_effects(cond):
        return ()
    value = eval_const(cond, env)
    if value is not None and bool(value) != branch_true:
        return INFEASIBLE
    facts: dict[str, int] = {}
    _truth_bindings(cond, branch_true, env, safe, facts)
    return tuple(sorted(facts.items()))


def _truth_bindings(
    cond: ast.Expr,
    branch_true: bool,
    env: Mapping[str, int],
    safe: frozenset[str],
    facts: dict[str, int],
) -> None:
    if isinstance(cond, ast.Cast):
        _truth_bindings(cond.operand, branch_true, env, safe, facts)
        return
    if isinstance(cond, ast.Comma) and cond.exprs:
        # The truth of a comma chain is the truth of its last expression
        # (earlier positions cannot write trackable names here: conditions
        # with assignments or increments never reach the binding pass).
        _truth_bindings(cond.exprs[-1], branch_true, env, safe, facts)
        return
    if isinstance(cond, ast.Unary) and cond.op == "!":
        _truth_bindings(cond.operand, not branch_true, env, safe, facts)
        return
    if isinstance(cond, ast.Ident):
        # ``if (x)``: the false edge knows x == 0 (true only bounds away
        # from zero, which the lattice cannot represent).
        if not branch_true and cond.name in safe:
            facts[cond.name] = 0
        return
    if isinstance(cond, ast.Binary):
        if cond.op == "&&" and branch_true:
            _truth_bindings(cond.left, True, env, safe, facts)
            _truth_bindings(cond.right, True, env, safe, facts)
            return
        if cond.op == "||" and not branch_true:
            _truth_bindings(cond.left, False, env, safe, facts)
            _truth_bindings(cond.right, False, env, safe, facts)
            return
        # Equality against a foldable value: the agreeing edge binds.
        if (cond.op == "==" and branch_true) or (cond.op == "!=" and not branch_true):
            for ident_side, const_side in ((cond.left, cond.right), (cond.right, cond.left)):
                target = _peel_casts(ident_side)
                if isinstance(target, ast.Ident) and target.name in safe:
                    value = eval_const(const_side, env)
                    if value is not None:
                        facts[target.name] = value
        return


def _peel_casts(expr: ast.Expr) -> ast.Expr:
    while isinstance(expr, ast.Cast):
        expr = expr.operand
    return expr


def _switch_edge_case(
    stmt: ast.Switch, pos: int, edge: Edge
) -> "tuple[bool, Optional[ast.Expr]] | None":
    """Map the ``pos``-th successor of a switch block to its case.

    Returns ``(is_default, case_value_expr)``; ``None`` when the edge is not
    a dispatch edge.  The CFG builder appends one edge per case in source
    order, then a synthesized default edge when the switch has none.
    """
    if edge.label not in ("case", "default"):
        return None
    if pos < len(stmt.cases):
        case = stmt.cases[pos]
        return (case.value is None, case.value)
    return (True, None)  # synthesized default edge


def _refine_edge(
    block: BasicBlock, pos: int, edge: Edge, env: ConstEnv, safe: frozenset[str]
) -> "EdgeFacts | object":
    """Facts (or INFEASIBLE) for one outgoing edge given the block's out-env."""
    element = block.condition_element()
    if element is None or element.expr is None:
        return ()
    cond = element.expr
    stmt = element.stmt
    if isinstance(stmt, ast.Switch):
        return _refine_switch_edge(stmt, pos, edge, cond, env, safe)
    if edge.label == "true":
        return condition_facts(cond, True, env, safe)
    if edge.label == "false":
        return condition_facts(cond, False, env, safe)
    return ()


def _refine_switch_edge(
    stmt: ast.Switch, pos: int, edge: Edge, scrutinee: ast.Expr, env: ConstEnv, safe: frozenset[str]
) -> "EdgeFacts | object":
    mapped = _switch_edge_case(stmt, pos, edge)
    if mapped is None or _has_side_effects(scrutinee):
        return ()
    is_default, case_value = mapped
    value = eval_const(scrutinee, env)
    if is_default:
        if value is not None:
            # The default edge is dead when some (foldable) case matches.
            for case in stmt.cases:
                if case.value is not None and eval_const(case.value, env) == value:
                    return INFEASIBLE
        return ()
    case_const = eval_const(case_value, env)
    if value is not None and case_const is not None and case_const != value:
        return INFEASIBLE
    facts: dict[str, int] = {}
    target = _peel_casts(scrutinee)
    if isinstance(target, ast.Ident) and target.name in safe and case_const is not None:
        facts[target.name] = case_const
    return tuple(sorted(facts.items()))


# ---------------------------------------------------------------------------
# The per-function solve and its cacheable result
# ---------------------------------------------------------------------------


@dataclass
class FunctionConsts:
    """One function's solved constant facts — the engine-cacheable artifact.

    Everything is keyed by the deterministic CFG block numbering (the
    builder is a pure function of the AST), so a result computed once can
    refine any later :func:`build_cfg` of the same function.
    """

    function: str
    block_count: int = 0
    #: Per-block input environments, canonicalized; unreachable blocks absent.
    in_envs: dict[int, FrozenEnv] = field(default_factory=dict)
    #: (block, successor position) -> facts that edge contributes.
    edge_facts: dict[tuple[int, int], EdgeFacts] = field(default_factory=dict)
    #: Edges the solver must never propagate across.
    infeasible: frozenset[tuple[int, int]] = frozenset()

    @property
    def reachable(self) -> frozenset[int]:
        """Blocks some feasible path from the entry reaches."""
        return frozenset(self.in_envs)

    @property
    def prunes(self) -> bool:
        return bool(self.infeasible)


#: How many times each function's constant facts have been solved in this
#: process (per-process, like ``PARSE_COUNTS``); the incremental analyzer's
#: invalidation tests assert re-solves stay confined to edited functions.
CONST_SOLVE_COUNTS: Counter[str] = Counter()


def reset_const_solve_counts() -> None:
    """Reset the per-function constant-solve counter (used by tests)."""
    CONST_SOLVE_COUNTS.clear()


def solve_function_consts(func: ast.FuncDef, cfg: Optional[CFG] = None) -> FunctionConsts:
    """Solve the constant lattice (with edge refinement) for one function."""
    CONST_SOLVE_COUNTS[func.name] += 1
    cfg = cfg or build_cfg(func)
    safe = trackable_names(func)

    def transfer(block: BasicBlock, env: ConstEnv) -> ConstEnv:
        for element in block.elements:
            env = _transfer_element(env, element, safe)
        return env

    def refine(block: BasicBlock, pos: int, edge: Edge, env: ConstEnv):
        outcome = _refine_edge(block, pos, edge, env, safe)
        if outcome is INFEASIBLE:
            return INFEASIBLE
        if not outcome:
            return env
        merged = dict(env)
        merged.update(outcome)
        return merged

    in_envs = solve_forward(cfg, transfer, join_envs, entry_state={}, edge_refine=refine)

    result = FunctionConsts(function=cfg.function, block_count=len(cfg.blocks))
    infeasible: set[tuple[int, int]] = set()
    for block in cfg.blocks:
        env = in_envs[block.index]
        if env is None:
            continue
        result.in_envs[block.index] = freeze_env(env)
        out_env = transfer(block, env)
        for pos, edge in enumerate(block.succs):
            outcome = _refine_edge(block, pos, edge, out_env, safe)
            if outcome is INFEASIBLE:
                infeasible.add((block.index, pos))
            elif outcome:
                result.edge_facts[(block.index, pos)] = outcome
    result.infeasible = frozenset(infeasible)
    return result


class ConstDomain:
    """Constant propagation as an :class:`~repro.dataflow.domains.AbstractDomain`.

    The port of this module onto the pluggable-domain protocol: everything
    above (folding, the evaluation-order-sound transfer, branch refinement,
    switch dispatch) is reused verbatim; this class only adapts the
    signatures.  The lattice is finite-height per function, so ``widen`` is
    plain join and ``narrow`` keeps the fixpoint it already reached.  The
    constant component never reads the product snapshot — it is the *base*
    of the reduction, every other domain folds through it.
    """

    name = "consts"

    def __init__(self, func: ast.FuncDef, cfg: CFG, safe: frozenset[str]) -> None:
        self.safe = safe

    def bottom(self) -> None:
        return None  # ⊥ is the solver's None, never an environment

    def initial(self) -> ConstEnv:
        return {}

    def transfer(self, element, state: ConstEnv, product) -> ConstEnv:
        return _transfer_element(state, element, self.safe)

    def join(self, a: ConstEnv, b: ConstEnv) -> ConstEnv:
        return join_envs(a, b)

    def widen(self, old: ConstEnv, new: ConstEnv) -> ConstEnv:
        return join_envs(old, new)

    def narrow(self, old: ConstEnv, new: ConstEnv) -> ConstEnv:
        return old

    def refine_edge(self, block: BasicBlock, pos: int, edge: Edge, state: ConstEnv, product):
        outcome = _refine_edge(block, pos, edge, state, self.safe)
        if outcome is INFEASIBLE:
            return INFEASIBLE
        if not outcome:
            return state
        merged = dict(state)
        merged.update(outcome)
        return merged

    def edge_facts(
        self, block: BasicBlock, pos: int, edge: Edge, state: ConstEnv
    ) -> "EdgeFacts | object":
        """The recording hook: the facts tuple one edge contributes."""
        return _refine_edge(block, pos, edge, state, self.safe)

    def freeze(self, state: ConstEnv) -> FrozenEnv:
        return freeze_env(state)


def refined_edges(consts: Optional[FunctionConsts]):
    """An ``edge_refine`` hook for *client* lattices: skip infeasible edges.

    This is the reduced-product composition: the constant component is
    already at its fixpoint, so a client solve only needs its pruning
    decisions, not its environments.  Returns ``None`` when there is nothing
    to prune, so clients pay zero overhead on the (common) unrefined CFG.
    """
    if consts is None or not consts.infeasible:
        return None
    infeasible = consts.infeasible

    def refine(block: BasicBlock, pos: int, edge: Edge, state):
        if (block.index, pos) in infeasible:
            return INFEASIBLE
        return state

    return refine


def has_branches(func: ast.FuncDef) -> bool:
    """Whether ``func`` contains any construct edge refinement could prune."""
    for node in walk(func.body):
        if isinstance(node, (ast.If, ast.While, ast.DoWhile, ast.Switch)):
            return True
        if isinstance(node, ast.For) and node.cond is not None:
            return True
    return False


def consts_of(
    func: Optional[ast.FuncDef], cache: Optional[dict] = None, cfg: Optional[CFG] = None
) -> Optional[FunctionConsts]:
    """Memoized per-function solve; ``None`` for branchless functions.

    ``cache`` maps function name to a solved :class:`FunctionConsts` (or
    ``None``) — the engine seeds it from its keyed artifact so checkers and
    the summary sweep never re-solve what the artifact already holds.
    """
    if func is None:
        return None
    if cache is not None and func.name in cache:
        return cache[func.name]
    result = solve_function_consts(func, cfg) if has_branches(func) else None
    if cache is not None:
        cache[func.name] = result
    return result


def solve_program_consts(
    program: "Program", functions: Optional[list[str]] = None
) -> dict[str, Optional[FunctionConsts]]:
    """Solve every (or a subset of) function's constant facts.

    Deterministic: results come out in the program's function-definition
    order regardless of how the engine shards the computation, so serial
    and ``--jobs N`` runs persist byte-identical artifacts.
    """
    results: dict[str, Optional[FunctionConsts]] = {}
    for name, func in program.functions_subset(functions):
        results[name] = consts_of(func)
    return results
