"""The octagon (difference-bound) abstract domain: ``±x ± y <= c``.

This is the relational step the ROADMAP names after the interval domain:
intervals store one range per variable, so ``x == y``, ``i < j`` between two
locals, and bounds a function *re-derives* (``limit = n - 1``) refine
nothing once the defining statement is behind.  The octagon component keeps
exactly those facts: binary constraints of the form ``±x ± y <= c`` over
the same trackable names the other components bind, solved as the third
member of the reduced product behind :mod:`repro.dataflow.domains`.

Representation: a *signed variable* is ``(name, sign)`` with sign ``+1`` or
``-1`` and value ``sign * name``; a constraint ``val(a) - val(b) <= c`` is
stored under a canonical key (a constraint and its mirrored coherent twin
``val(bar b) - val(bar a) <= c`` are the same fact).  The environment maps
canonical keys to the tightest known bound; absence means +∞, the whole-env
⊥ is the solver's ``None``.  Unary bounds (``x <= c``) are deliberately
*not* stored — the interval component already tracks them, and the product
snapshot hands each side the other's state, so the split costs no
precision a client actually queries.

Closure is shortest-path tightening (Floyd–Warshall over the signed
vertices): ``x - y <= c₁ ∧ y - z <= c₂ ⟹ x - z <= c₁ + c₂``; a negative
self-cycle is a contradiction and marks the deriving edge infeasible.
Like the interval lattice the bound chain is infinite, so loop heads widen
(a constraint whose bound grew — or vanished — is dropped to +∞; the
surviving set shrinks monotonically, which is the termination argument)
and the bounded narrowing sweep afterwards re-adopts only constraints the
widening threw away entirely.

Branch refinement covers all six comparisons: ``<``, ``<=``, ``>``, ``>=``
add the (strictness-adjusted) difference constraint, ``==`` adds both
directions, and ``!=`` — non-convex, so it can add nothing — still *kills*
an edge whose environment entails the equality it denies.

Known imprecision, on purpose: only unit coefficients (``2*x - y <= c`` is
not representable, so ``x = 2 * y`` forgets ``x``), only trackable scalar
names (a bound carried through the heap — ``buf->n`` — never enters the
solved state; the Deputy region cache layers its own rendered-atom
relations on top for exactly that case), and no closure through unary
bounds (``x <= 3 ∧ y >= 5 ⟹ x - y <= -2`` is the interval component's
contradiction to find).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..minic import ast_nodes as ast
from ..minic.visitor import iter_child_nodes
from .consts import _has_side_effects, _peel_casts, eval_const
from .solver import INFEASIBLE

#: A signed variable: ``(name, sign)`` with value ``sign * name``.
SVar = tuple[str, int]

#: A canonical constraint key ``(a, b)`` meaning ``val(a) - val(b) <= c``.
OctKey = tuple[SVar, SVar]

#: The octagon environment: canonical key -> tightest bound (absence = +∞).
OctEnv = dict

#: Canonical hashable form for artifact storage: sorted ``(a, b, c)`` rows.
FrozenOctEnv = tuple[tuple[SVar, SVar, int], ...]


def _bar(sv: SVar) -> SVar:
    return (sv[0], -sv[1])


def _canon(a: SVar, b: SVar) -> OctKey:
    """The canonical key for ``val(a) - val(b) <= c`` (coherence folding)."""
    mirrored = (_bar(b), _bar(a))
    return (a, b) if (a, b) <= mirrored else mirrored


def freeze_octagon_env(env: Mapping[OctKey, int]) -> FrozenOctEnv:
    return tuple(sorted((a, b, c) for (a, b), c in env.items()))


def thaw_octagon_env(frozen: FrozenOctEnv) -> OctEnv:
    return {(a, b): c for a, b, c in frozen}


# ---------------------------------------------------------------------------
# Constraint plumbing
# ---------------------------------------------------------------------------


def oct_bound(env: Mapping[OctKey, int], a: SVar, b: SVar) -> Optional[int]:
    """The known bound on ``val(a) - val(b)``, or ``None`` (+∞)."""
    return env.get(_canon(a, b))


def oct_tighten(env: OctEnv, a: SVar, b: SVar, c: int) -> None:
    """Record ``val(a) - val(b) <= c`` in place, keeping the tighter bound."""
    key = _canon(a, b)
    current = env.get(key)
    if current is None or c < current:
        env[key] = c


def add_octagon_constraint(env: OctEnv, sx: int, x: str, sy: int, y: str,
                           c: int) -> None:
    """Record ``sx*x + sy*y <= c``; same-variable (unary) shapes are skipped."""
    if x == y:
        return  # 0 <= c or 2x <= c: trivial or the interval component's job
    oct_tighten(env, (x, sx), (y, -sy), c)


def entails_octagon(env: Mapping[OctKey, int], sx: int, x: str,
                    sy: int, y: str, c: int) -> bool:
    """Whether a (closed) environment entails ``sx*x + sy*y <= c``."""
    if x == y:
        return False
    bound = oct_bound(env, (x, sx), (y, -sy))
    return bound is not None and bound <= c


def close_octagon(env: Mapping[OctKey, int]) -> Optional[OctEnv]:
    """Shortest-path closure; ``None`` signals a contradiction.

    Floyd–Warshall over the signed vertices occurring in ``env``.  The
    result contains every derivable binary constraint at its tightest
    bound; derived unary/self entries (``(x,+) → (x,−)`` paths) are used
    for contradiction detection and intermediate tightening but are not
    stored — intervals own the unary bounds.
    """
    if not env:
        return {}
    verts: set[SVar] = set()
    for a, b in env:
        verts.update((a, _bar(a), b, _bar(b)))
    order = sorted(verts)
    dist: dict[OctKey, int] = {}
    for (a, b), c in env.items():
        for key in ((a, b), (_bar(b), _bar(a))):
            current = dist.get(key)
            if current is None or c < current:
                dist[key] = c
    for k in order:
        for i in order:
            first = dist.get((i, k))
            if first is None:
                continue
            for j in order:
                second = dist.get((k, j))
                if second is None:
                    continue
                through = first + second
                current = dist.get((i, j))
                if current is None or through < current:
                    dist[(i, j)] = through
    closed: OctEnv = {}
    for (a, b), c in dist.items():
        if a == b:
            if c < 0:
                return None
            continue
        if a == _bar(b):
            continue  # unary channel: checked for contradiction via a == b
        key = _canon(a, b)
        current = closed.get(key)
        if current is None or c < current:
            closed[key] = c
    return closed


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------


def join_octagon_envs(a: OctEnv, b: OctEnv) -> OctEnv:
    """Env join: constraints present in both, at the weaker bound.

    The pointwise max of two closed environments is closed, so closure
    performed on branch edges survives the merge.
    """
    if a == b:
        return a
    out: OctEnv = {}
    for key, bound in a.items():
        other = b.get(key)
        if other is not None:
            out[key] = bound if bound >= other else other
    return out


def widen_octagon_envs(old: OctEnv, new: OctEnv) -> OctEnv:
    """Env widening: a constraint whose bound grew (or vanished) drops to +∞.

    Termination: the result is always a subset of ``old`` with ``old``'s
    bounds, so the constraint set at a widened block input shrinks
    monotonically and every chain through this operator is finite.
    """
    out: OctEnv = {}
    for key, bound in old.items():
        other = new.get(key)
        if other is not None and other <= bound:
            out[key] = bound
    return out


def narrow_octagon_envs(old: OctEnv, new: OctEnv) -> OctEnv:
    """Env narrowing: re-adopt only constraints widening threw to +∞.

    A bound present in ``old`` is never moved (that could oscillate);
    constraints absent from ``old`` are adopted from the recomputed state,
    mirroring the interval rule, so bounded decreasing rounds terminate and
    stay above the least fixpoint.
    """
    out: OctEnv = {}
    for key, bound in new.items():
        previous = old.get(key)
        out[key] = previous if previous is not None else bound
    return out


def forget_octagon(env: OctEnv, name: str) -> OctEnv:
    """Drop every constraint mentioning ``name`` (the variable was written)."""
    if not env:
        return env
    return {key: c for key, c in env.items()
            if key[0][0] != name and key[1][0] != name}


def shift_octagon(env: OctEnv, name: str, delta: int) -> OctEnv:
    """The effect of ``name = name + delta`` on every constraint.

    Substituting ``x_old = x_new - delta`` into ``val(a) - val(b) <= c``
    adjusts the bound by the (signed) coefficient ``x`` carries in the
    constraint; a variable occurs in at most one side of a canonical key.
    """
    if not env or delta == 0:
        return env
    out: OctEnv = {}
    for (a, b), c in env.items():
        if a[0] == name:
            c = c + a[1] * delta
        elif b[0] == name:
            c = c - b[1] * delta
        out[(a, b)] = c
    return out


def assign_octagon(env: OctEnv, x: str, sign: int, y: str, offset: int) -> OctEnv:
    """The effect of ``x = sign*y + offset`` (both names trackable)."""
    out = forget_octagon(env, x)
    out = dict(out)
    add_octagon_constraint(out, +1, x, -sign, y, offset)
    add_octagon_constraint(out, -1, x, sign, y, -offset)
    return out


# ---------------------------------------------------------------------------
# Linear-form extraction and the transfer function
# ---------------------------------------------------------------------------


def linear_of(expr: Optional[ast.Expr], consts: Mapping[str, int],
              safe: frozenset[str]) -> Optional[tuple[int, str, int]]:
    """Decompose ``expr`` as ``sign*name + offset`` over a trackable name.

    Returns ``(sign, name, offset)`` or ``None`` when the expression is not
    a unit-coefficient linear form (the module's named imprecision: ``2*x``
    and friends are not octagon material).  Pure constants also return
    ``None`` — callers fold those through :func:`eval_const` first.
    """
    if expr is None:
        return None
    expr = _peel_casts(expr)
    if isinstance(expr, ast.Ident):
        if expr.name in safe and expr.name not in consts:
            return (1, expr.name, 0)
        return None
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = linear_of(expr.operand, consts, safe)
        if inner is None:
            return None
        sign, name, offset = inner
        return (-sign, name, -offset)
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        left_const = eval_const(expr.left, consts)
        right_const = eval_const(expr.right, consts)
        if right_const is not None:
            inner = linear_of(expr.left, consts, safe)
            if inner is None:
                return None
            sign, name, offset = inner
            delta = right_const if expr.op == "+" else -right_const
            return (sign, name, offset + delta)
        if left_const is not None:
            inner = linear_of(expr.right, consts, safe)
            if inner is None:
                return None
            sign, name, offset = inner
            if expr.op == "-":
                sign, offset = -sign, -offset
            return (sign, name, left_const + offset)
    return None


def _bind_octagon(env: OctEnv, name: str, value: Optional[ast.Expr],
                  safe: frozenset[str], consts: Mapping[str, int]) -> OctEnv:
    """The effect of ``name = value`` on the relational state."""
    lin = linear_of(value, consts, safe) if value is not None else None
    if lin is None:
        return forget_octagon(env, name)
    sign, source, offset = lin
    if source == name:
        if sign == 1:
            return shift_octagon(env, name, offset)
        return forget_octagon(env, name)  # x = -x + c: occurrence flips sign
    return assign_octagon(env, name, sign, source, offset)


def transfer_octagon_expr(env: OctEnv, expr: Optional[ast.Expr],
                          safe: frozenset[str],
                          consts: Mapping[str, int]) -> OctEnv:
    """Apply the assignment effects of ``expr`` to ``env`` (copy-on-write).

    Mirrors the constant/interval transfers structurally, including the
    evaluation-order soundness rule: an assignment under an undecided
    ``&&``/``||`` or ternary only *may* execute, so its outcome joins with
    the not-executed environment.  Writes through memory and calls touch
    nothing here — octagon variables are callee-immune by construction.
    """
    if expr is None:
        return env
    if isinstance(expr, ast.Assign):
        env = transfer_octagon_expr(env, expr.value, safe, consts)
        if not isinstance(expr.target, ast.Ident):
            return transfer_octagon_expr(env, expr.target, safe, consts)
        name = expr.target.name
        if name not in safe:
            return env
        if expr.op == "=":
            return _bind_octagon(env, name, expr.value, safe, consts)
        if expr.op in ("+=", "-="):
            delta = eval_const(expr.value, consts)
            if delta is not None:
                return shift_octagon(env, name,
                                     delta if expr.op == "+=" else -delta)
        return forget_octagon(env, name)
    if isinstance(expr, (ast.Postfix, ast.Unary)) and expr.op in ("++", "--"):
        if isinstance(expr.operand, ast.Ident):
            name = expr.operand.name
            if name not in safe:
                return env
            return shift_octagon(env, name, 1 if expr.op == "++" else -1)
        return transfer_octagon_expr(env, expr.operand, safe, consts)
    if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
        env = transfer_octagon_expr(env, expr.left, safe, consts)
        left = eval_const(expr.left, consts)
        if left is not None:
            runs = (left != 0) if expr.op == "&&" else (left == 0)
            if runs:
                return transfer_octagon_expr(env, expr.right, safe, consts)
            return env
        taken = transfer_octagon_expr(env, expr.right, safe, consts)
        return join_octagon_envs(env, taken)
    if isinstance(expr, ast.Conditional):
        env = transfer_octagon_expr(env, expr.cond, safe, consts)
        cond = eval_const(expr.cond, consts)
        if cond is not None:
            taken = expr.then if cond else expr.otherwise
            return transfer_octagon_expr(env, taken, safe, consts)
        then_env = transfer_octagon_expr(env, expr.then, safe, consts)
        else_env = transfer_octagon_expr(env, expr.otherwise, safe, consts)
        return join_octagon_envs(then_env, else_env)
    for child in iter_child_nodes(expr):
        if isinstance(child, ast.Expr):
            env = transfer_octagon_expr(env, child, safe, consts)
    return env


# ---------------------------------------------------------------------------
# Branch-edge refinement
# ---------------------------------------------------------------------------

_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def _comparison_constraints(cond: ast.Expr, branch_true: bool,
                            env: Mapping[OctKey, int],
                            consts: Mapping[str, int],
                            safe: frozenset[str],
                            pending: OctEnv) -> bool:
    """Collect the constraints ``cond`` establishes; True means infeasible."""
    cond = _peel_casts(cond)
    if isinstance(cond, ast.Comma) and cond.exprs:
        return _comparison_constraints(cond.exprs[-1], branch_true, env,
                                       consts, safe, pending)
    if isinstance(cond, ast.Unary) and cond.op == "!":
        return _comparison_constraints(cond.operand, not branch_true, env,
                                       consts, safe, pending)
    if not isinstance(cond, ast.Binary):
        return False
    if (cond.op == "&&" and branch_true) or (cond.op == "||" and not branch_true):
        if _comparison_constraints(cond.left, branch_true, env, consts, safe,
                                   pending):
            return True
        return _comparison_constraints(cond.right, branch_true, env, consts,
                                       safe, pending)
    op = cond.op
    if op not in _NEGATED:
        return False
    if not branch_true:
        op = _NEGATED[op]
    left = linear_of(cond.left, consts, safe)
    right = linear_of(cond.right, consts, safe)
    if left is None or right is None:
        return False
    s1, x, o1 = left
    s2, y, o2 = right
    if op in (">", ">="):
        op = "<" if op == ">" else "<="
        (s1, x, o1), (s2, y, o2) = (s2, y, o2), (s1, x, o1)
    if op in ("<", "<="):
        strict = 1 if op == "<" else 0
        c = o2 - o1 - strict
        if x == y and s1 == s2:
            return c < 0  # e.g. i < i: constant-false, infeasible
        add_octagon_constraint(pending, s1, x, -s2, y, c)
        return False
    if op == "==":
        if x == y and s1 == s2:
            return o1 != o2
        add_octagon_constraint(pending, s1, x, -s2, y, o2 - o1)
        add_octagon_constraint(pending, -s1, x, s2, y, o1 - o2)
        return False
    # op == "!=": non-convex, so nothing can be added — but an environment
    # that entails the denied equality makes this edge dead.
    if x == y and s1 == s2:
        return o1 == o2
    return (entails_octagon(env, s1, x, -s2, y, o2 - o1)
            and entails_octagon(env, -s1, x, s2, y, o1 - o2))


def octagon_condition_facts(cond: ast.Expr, branch_true: bool,
                            env: Mapping[OctKey, int],
                            consts: Mapping[str, int],
                            safe: frozenset[str]) -> "OctEnv | object":
    """The refined (closed) environment ``branch_true`` of ``cond`` yields.

    Returns the input ``env`` unchanged when the condition contributes
    nothing, a new closed environment when it does, or :data:`INFEASIBLE`
    when the added constraints contradict the environment (a negative
    cycle after closure) or the comparison is self-contradictory.
    Side-effecting conditions contribute nothing, like the other lattices.
    """
    if _has_side_effects(cond):
        return env
    pending: OctEnv = {}
    if _comparison_constraints(cond, branch_true, env, consts, safe, pending):
        return INFEASIBLE
    if not pending:
        return env
    merged = dict(env)
    for key, c in pending.items():
        current = merged.get(key)
        if current is None or c < current:
            merged[key] = c
    closed = close_octagon(merged)
    if closed is None:
        return INFEASIBLE
    return closed


# ---------------------------------------------------------------------------
# The domain plug-in
# ---------------------------------------------------------------------------


class OctagonDomain:
    """The relational component of the reduced product (``name = "octagons"``).

    Implements the :class:`repro.dataflow.domains.AbstractDomain` protocol.
    The product snapshot carries the constant component's environment, used
    to fold offsets (``limit = n - K`` with ``K`` a known constant) and to
    drop names the constant lattice already pins to a point — a singleton
    needs no relational row, and excluding it keeps closure matrices small.
    """

    name = "octagons"

    def __init__(self, func: ast.FuncDef, cfg, safe: frozenset[str]) -> None:
        self.safe = safe

    def bottom(self) -> None:
        return None  # ⊥ is the solver's None, never an environment

    def initial(self) -> OctEnv:
        return {}

    def _consts(self, product: Mapping[str, object]) -> Mapping[str, int]:
        return product.get("consts") or {}

    def transfer(self, element, state: OctEnv, product) -> OctEnv:
        consts = self._consts(product)
        env = transfer_octagon_expr(state, element.expr, self.safe, consts)
        decl = element.decl
        if (
            decl is not None
            and decl.name in self.safe
            and decl.init is not None
            and not decl.init.is_list
            and decl.init.expr is element.expr
        ):
            env = _bind_octagon(env, decl.name, element.expr, self.safe, consts)
        return env

    def join(self, a: OctEnv, b: OctEnv) -> OctEnv:
        return join_octagon_envs(a, b)

    def widen(self, old: OctEnv, new: OctEnv) -> OctEnv:
        return widen_octagon_envs(old, new)

    def narrow(self, old: OctEnv, new: OctEnv) -> OctEnv:
        return narrow_octagon_envs(old, new)

    def refine_edge(self, block, pos: int, edge, state: OctEnv, product):
        element = block.condition_element()
        if element is None or element.expr is None:
            return state
        if edge.label == "true":
            branch_true = True
        elif edge.label == "false":
            branch_true = False
        else:
            return state  # switch dispatch stays the constant component's job
        facts = octagon_condition_facts(
            element.expr, branch_true, state, self._consts(product), self.safe)
        if facts is INFEASIBLE:
            return INFEASIBLE
        return facts

    def freeze(self, state: OctEnv) -> FrozenOctEnv:
        closed = close_octagon(state)
        return freeze_octagon_env(state if closed is None else closed)
