"""Interprocedural summary framework: SCC-ordered bottom-up solving.

The paper's pitch is *sound whole-kernel* analysis; this module is the
substrate that makes every checker interprocedural at once.  It condenses
the (points-to-resolved) call graph into strongly connected components with
Tarjan's algorithm, orders the components bottom-up (callees before
callers), and computes one :class:`~repro.dataflow.summaries.FunctionSummary`
per function:

* acyclic components are solved in a single pass;
* recursive components (self loops, mutual recursion, cycles closed through
  a function pointer) iterate to a lattice fixpoint, with a divergence
  guard mirroring the intraprocedural solver's;
* independent components of the same *wave* (equal dependency depth in the
  condensation DAG) can be solved in parallel — the engine shards them
  across its worker pool, and the merge is byte-identical with the serial
  order because each component's result depends only on earlier waves.

One SCC-ordered sweep with memoized summaries replaces re-running every
checker to global convergence — few, cheap passes to the whole-program
fixpoint instead of many global ones.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from .summaries import (
    BOTTOM_SUMMARY,
    FunctionSummary,
    SummaryContext,
    build_context,
    compute_summary,
)

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a package cycle
    from ..blockstop.callgraph import CallGraph
    from ..machine.program import Program

#: Iteration cap per SCC before declaring the summary lattice divergent.
MAX_SCC_ITERATIONS = 64

#: How many times each SCC (keyed by its sorted member tuple) has been
#: solved in this process.  The incremental analyzer's invalidation tests
#: assert against this, the same way the engine's parse-once guarantee is
#: asserted against ``PARSE_COUNTS``.  Like that counter it is per-process:
#: pool workers bump their own copies, not the parent's.
SCC_SOLVE_COUNTS: Counter[tuple[str, ...]] = Counter()


def reset_scc_solve_counts() -> None:
    """Reset the per-SCC solve counter (used by tests)."""
    SCC_SOLVE_COUNTS.clear()


class SummaryDivergence(RuntimeError):
    """Raised when an SCC's summaries fail to reach a fixpoint."""


@dataclass
class Condensation:
    """The SCC condensation of a call graph, in bottom-up order.

    ``sccs`` lists each component as a sorted tuple of function names, in
    reverse-topological order (every callee SCC precedes its callers), which
    is exactly the bottom-up summary-computation order.  ``waves`` groups
    component indices by dependency depth: all components of wave *k* depend
    only on waves ``< k`` and are therefore mutually independent.
    """

    sccs: list[tuple[str, ...]] = field(default_factory=list)
    scc_of: dict[str, int] = field(default_factory=dict)
    scc_callees: dict[int, tuple[int, ...]] = field(default_factory=dict)
    self_loops: set[str] = field(default_factory=set)
    waves: list[tuple[int, ...]] = field(default_factory=list)

    def is_recursive(self, name: str) -> bool:
        """Whether ``name`` sits on a call cycle (incl. a direct self loop)."""
        index = self.scc_of.get(name)
        if index is None:
            return False
        return len(self.sccs[index]) > 1 or name in self.self_loops

    def recursive_functions(self) -> set[str]:
        found = {name for scc in self.sccs if len(scc) > 1 for name in scc}
        return found | set(self.self_loops)

    def members(self, name: str) -> tuple[str, ...]:
        index = self.scc_of.get(name)
        return self.sccs[index] if index is not None else (name,)


def condense_callgraph(graph: "CallGraph") -> Condensation:
    """Tarjan's SCC algorithm (iterative) over the call graph.

    Components come out in reverse-topological order — a property of
    Tarjan's completion order — so iterating ``sccs`` front to back visits
    callees before callers.  Node visit order is sorted, making component
    numbering (and therefore everything derived from it) deterministic.
    """
    nodes = sorted(graph.nodes)
    edges = {node: sorted(graph.edges.get(node, ())) for node in nodes}
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    result = Condensation()

    for root in nodes:
        if root in index_of:
            continue
        # Explicit DFS stack of (node, iterator position) to survive deep
        # call chains without hitting the recursion limit.
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = edges[node]
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if child not in index_of:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                scc_index = len(result.sccs)
                result.sccs.append(tuple(sorted(component)))
                for member in component:
                    result.scc_of[member] = scc_index

    for node in nodes:
        if node in edges[node]:
            result.self_loops.add(node)

    # Condensed edges (caller SCC -> callee SCCs) and dependency waves.
    callees: dict[int, set[int]] = {i: set() for i in range(len(result.sccs))}
    for node in nodes:
        src = result.scc_of[node]
        for callee in edges[node]:
            dst = result.scc_of[callee]
            if dst != src:
                callees[src].add(dst)
    result.scc_callees = {i: tuple(sorted(deps)) for i, deps in callees.items()}

    depth: dict[int, int] = {}
    for index in range(len(result.sccs)):  # reverse-topo: deps come first
        deps = result.scc_callees[index]
        depth[index] = 1 + max((depth[d] for d in deps), default=-1)
    waves: dict[int, list[int]] = {}
    for index, d in depth.items():
        waves.setdefault(d, []).append(index)
    result.waves = [tuple(sorted(waves[d])) for d in sorted(waves)]
    return result


def callgraph_fingerprint(graph: "CallGraph") -> str:
    """A stable content hash of the call graph's nodes and edges.

    The engine mixes this into the summary artifact's cache key so any
    change to the graph (new corpus function, different points-to precision
    resolving different indirect edges) invalidates persisted summaries.
    """
    digest = hashlib.sha256()
    for node in sorted(graph.nodes):
        digest.update(node.encode())
        digest.update(b"->")
        for callee in sorted(graph.edges.get(node, ())):
            digest.update(callee.encode())
            digest.update(b",")
        digest.update(b";")
    return digest.hexdigest()[:32]


def scc_fingerprints(
    condensation: Condensation,
    graph: "CallGraph",
    body_hashes: dict[str, str],
    globals_fp: str = "",
) -> list[str]:
    """One Merkle-style cache key per SCC, in condensation order.

    ``key(scc) = H(globals_fp, members with body hash and out-edges,
    callee-SCC keys)`` — because the condensation is reverse-topological,
    each key transitively covers every function body, annotation and call
    edge the component's fixpoint can observe:

    * a member's *body* (its direct calls included) via ``body_hashes``;
    * its full resolved out-edge list, so a points-to change that adds or
      drops an edge — even one landing back inside the same component —
      changes the key;
    * everything reachable below, via the callee components' keys;
    * prototypes, annotations, defines and analysis parameters via
      ``globals_fp`` (the caller folds those in).

    Functions without a definition hash as ``undef:<name>``; their
    observable behavior is annotation-only, which ``globals_fp`` covers.
    """
    keys: list[str] = []
    for index, scc in enumerate(condensation.sccs):
        digest = hashlib.sha256()
        digest.update(globals_fp.encode())
        for name in scc:
            digest.update(b"|")
            digest.update(name.encode())
            digest.update(b"=")
            digest.update(body_hashes.get(name, f"undef:{name}").encode())
            for callee in sorted(graph.edges.get(name, ())):
                digest.update(b",")
                digest.update(callee.encode())
        for dep in condensation.scc_callees.get(index, ()):
            digest.update(b"^")
            digest.update(keys[dep].encode())
        keys.append(digest.hexdigest()[:32])
    return keys


# ---------------------------------------------------------------------------
# The bottom-up solver
# ---------------------------------------------------------------------------


def solve_scc(
    scc: tuple[str, ...],
    ctx: SummaryContext,
    graph: "CallGraph",
    solved: dict[str, FunctionSummary],
) -> dict[str, FunctionSummary]:
    """Iterate one SCC's summaries to a fixpoint.

    ``solved`` holds the summaries of every earlier (callee-side) SCC.
    Members start at bottom; each round recomputes every member from the
    previous round's iterates.  Acyclic singletons converge in one round by
    construction; recursive components ascend the (finite, capped) lattice
    until two consecutive rounds agree.
    """
    SCC_SOLVE_COUNTS[tuple(scc)] += 1
    current: dict[str, FunctionSummary] = {name: BOTTOM_SUMMARY for name in scc}

    def lookup(callee: str) -> FunctionSummary | None:
        summary = current.get(callee)
        if summary is not None:
            return summary
        return solved.get(callee)

    recursive = len(scc) > 1 or any(name in graph.edges.get(name, ()) for name in scc)
    for _ in range(MAX_SCC_ITERATIONS):
        next_round = {name: compute_summary(name, ctx, lookup) for name in scc}
        changed = next_round != current
        current = next_round
        if not changed or not recursive:
            break
    else:
        raise SummaryDivergence(
            f"summaries did not converge for SCC {scc[:4]}"
            f"{'...' if len(scc) > 4 else ''} after {MAX_SCC_ITERATIONS} rounds"
        )

    # Stack depth: the deepest *bounded* chain.  The cycle itself is
    # unbounded (members are flagged recursive and need the run-time
    # check), but a bounded chain may still pass through every member of
    # the SCC once before escaping to an out-of-SCC callee — so each
    # member's depth is the sum of the SCC's frames plus the deepest
    # escape.  For the common acyclic singleton this reduces to
    # frame + max(callee depth).
    scc_set = set(scc)
    defined = [name for name in scc if current[name].defined]
    total_frames = sum(current[name].frame_size for name in defined)
    escape = 0
    for name in defined:
        for callee in graph.edges.get(name, ()):
            if callee in scc_set:
                continue
            callee_summary = solved.get(callee)
            if callee_summary is not None and callee_summary.defined:
                escape = max(escape, callee_summary.stack_depth)
    for name in defined:
        current[name] = replace(current[name], stack_depth=total_frames + escape)
    return current


def solve_summaries(
    program: "Program",
    graph: "CallGraph",
    condensation: Condensation | None = None,
    ctx: SummaryContext | None = None,
    scc_runner: Callable | None = None,
    consts: dict | None = None,
) -> dict[str, FunctionSummary]:
    """Compute every function's summary, bottom-up over the condensation.

    ``scc_runner(wave_sccs, ctx, graph, solved)`` may be supplied to solve
    one wave's (mutually independent) components elsewhere — the engine
    passes a pool-backed runner for ``--jobs N``.  It must return one
    ``dict[str, FunctionSummary]`` per component, in wave order; the default
    solves them inline.  Merging is order-independent because components of
    a wave never overlap, so parallel and serial runs are identical.

    ``consts`` pre-seeds the context's per-function constant facts (the
    engine's keyed artifact); without it each function's facts are solved
    lazily the first time its summary computation needs them, so standalone
    callers still get the pruned-CFG summaries.
    """
    condensation = condensation or condense_callgraph(graph)
    ctx = ctx or build_context(program, graph, consts=consts)
    solved: dict[str, FunctionSummary] = {}
    for wave in condensation.waves:
        wave_sccs = [condensation.sccs[index] for index in wave]
        if scc_runner is not None and len(wave_sccs) > 1:
            results = scc_runner(wave_sccs, ctx, graph, solved)
        else:
            results = [solve_scc(scc, ctx, graph, solved) for scc in wave_sccs]
        for result in results:
            solved.update(result)
    return solved
