"""Control-flow graphs over MiniC function bodies.

A :class:`CFG` is a list of :class:`BasicBlock`\\ s.  Each block holds an
ordered list of :class:`Element`\\ s — the expressions the block evaluates,
tagged with how they are used (plain evaluation, declaration initializer,
branch condition, return value) — and edges to successor blocks.  Edges out
of a condition carry a ``"true"``/``"false"`` label; ``switch`` dispatch
edges carry ``"case"``/``"default"``.

The builder performs a single structured lowering pass:

* ``if``/``else`` produce diamond shapes with a join block;
* ``while``/``do``/``for`` produce a header with a back edge (so the solver
  iterates loops to a fixpoint);
* ``return`` edges to the dedicated exit block and starts an unreachable
  continuation block;
* ``break``/``continue`` edge to the innermost loop (or switch) targets;
* ``goto``/labels resolve through a per-function label table.

Statements after a jump still get blocks — with no predecessors — so the
solver sees them as unreachable (input state ``None``) rather than silently
dropping them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..minic import ast_nodes as ast
from ..minic.visitor import initializer_expressions

#: Element kinds: how the expression is consumed by the block.
EXPR = "expr"
DECL = "decl"
COND = "cond"
RETURN = "return"


@dataclass(frozen=True)
class Element:
    """One expression evaluated by a basic block.

    ``decl`` is the :class:`ast.Declaration` the expression initializes when
    ``kind == "decl"`` (so analyses can see the variable being bound without
    re-deriving parenthood).  ``expr`` is ``None`` only for value-less
    ``return;`` elements.
    """

    kind: str
    expr: Optional[ast.Expr]
    stmt: ast.Stmt
    decl: Optional[ast.Declaration] = None


@dataclass(frozen=True)
class Edge:
    """A control-flow edge to ``target`` with an optional branch label."""

    target: int
    label: Optional[str] = None


@dataclass
class BasicBlock:
    index: int
    elements: list[Element] = field(default_factory=list)
    succs: list[Edge] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def condition_element(self) -> Optional[Element]:
        """The branch condition this block dispatches on, if any.

        The builder always appends the ``COND`` element last and only then
        attaches the labelled branch edges, so a block's branching condition
        — consumed by the edge-refinement layer
        (:mod:`repro.dataflow.consts`) — is its trailing element.
        """
        if self.elements and self.elements[-1].kind == COND:
            return self.elements[-1]
        return None


@dataclass
class CFG:
    """A per-function control-flow graph with dedicated entry/exit blocks."""

    function: str
    blocks: list[BasicBlock]
    entry: int
    exit: int

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry block."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for edge in self.blocks[stack.pop()].succs:
                if edge.target not in seen:
                    seen.add(edge.target)
                    stack.append(edge.target)
        return seen


@dataclass
class _LoopContext:
    break_target: Optional[int]
    continue_target: Optional[int]


class _Builder:
    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: list[BasicBlock] = []
        self.labels: dict[str, int] = {}
        self.entry = self._new_block()
        self.exit = self._new_block()

    # -- low-level graph construction ---------------------------------------

    def _new_block(self) -> int:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _edge(self, src: int, dst: int, label: Optional[str] = None) -> None:
        self.blocks[src].succs.append(Edge(target=dst, label=label))
        self.blocks[dst].preds.append(src)

    def _append(self, block: int, element: Element) -> None:
        self.blocks[block].elements.append(element)

    def _label_block(self, label: str) -> int:
        if label not in self.labels:
            self.labels[label] = self._new_block()
        return self.labels[label]

    # -- lowering -----------------------------------------------------------
    #
    # ``_lower(stmt, current, ctx)`` appends ``stmt``'s effects starting in
    # block ``current`` and returns the block where control continues, or
    # ``None`` when control never falls through (return/break/continue/goto).

    def _lower(self, stmt: ast.Stmt, current: int, ctx: _LoopContext) -> Optional[int]:
        if isinstance(stmt, ast.Block):
            return self._lower_sequence(stmt.stmts, current, ctx)
        if isinstance(stmt, ast.ExprStmt):
            self._append(current, Element(EXPR, stmt.expr, stmt))
            return current
        if isinstance(stmt, ast.DeclStmt):
            self._lower_declaration(stmt.decl, stmt, current)
            return current
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, current, ctx)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, current, ctx)
        if isinstance(stmt, ast.DoWhile):
            return self._lower_do_while(stmt, current, ctx)
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt, current, ctx)
        if isinstance(stmt, ast.Switch):
            return self._lower_switch(stmt, current, ctx)
        if isinstance(stmt, ast.Return):
            self._append(current, Element(RETURN, stmt.value, stmt))
            self._edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            if ctx.break_target is not None:
                self._edge(current, ctx.break_target)
            return None
        if isinstance(stmt, ast.Continue):
            if ctx.continue_target is not None:
                self._edge(current, ctx.continue_target)
            return None
        if isinstance(stmt, ast.Goto):
            self._edge(current, self._label_block(stmt.label))
            return None
        if isinstance(stmt, ast.Label):
            target = self._label_block(stmt.name)
            self._edge(current, target)
            if stmt.stmt is not None:
                return self._lower(stmt.stmt, target, ctx)
            return target
        # EmptyStmt, Asm (opaque to every analysis), and anything new.
        return current

    def _lower_sequence(
        self, stmts: list[ast.Stmt], current: Optional[int], ctx: _LoopContext
    ) -> Optional[int]:
        for stmt in stmts:
            if current is None:
                # Dead code after a jump still gets (unreachable) blocks so
                # labels inside it exist and analyses can see it was skipped.
                current = self._new_block()
            current = self._lower(stmt, current, ctx)
        return current

    def _lower_declaration(self, decl: ast.Declaration, stmt: ast.Stmt, current: int) -> None:
        if decl.init is None:
            return
        for expr in initializer_expressions(decl.init):
            self._append(current, Element(DECL, expr, stmt, decl=decl))

    def _lower_if(self, stmt: ast.If, current: int, ctx: _LoopContext) -> Optional[int]:
        self._append(current, Element(COND, stmt.cond, stmt))
        then_block = self._new_block()
        self._edge(current, then_block, "true")
        then_end = self._lower(stmt.then, then_block, ctx)
        else_end: Optional[int]
        if stmt.otherwise is not None:
            else_block = self._new_block()
            self._edge(current, else_block, "false")
            else_end = self._lower(stmt.otherwise, else_block, ctx)
        else:
            else_end = current
        if then_end is None and else_end is None:
            return None
        join = self._new_block()
        if then_end is not None:
            self._edge(then_end, join)
        if else_end is not None:
            label = "false" if stmt.otherwise is None else None
            self._edge(else_end, join, label)
        return join

    def _lower_while(self, stmt: ast.While, current: int, ctx: _LoopContext) -> int:
        header = self._new_block()
        after = self._new_block()
        self._edge(current, header)
        self._append(header, Element(COND, stmt.cond, stmt))
        body = self._new_block()
        self._edge(header, body, "true")
        self._edge(header, after, "false")
        body_end = self._lower(stmt.body, body, _LoopContext(after, header))
        if body_end is not None:
            self._edge(body_end, header)
        return after

    def _lower_do_while(self, stmt: ast.DoWhile, current: int, ctx: _LoopContext) -> int:
        body = self._new_block()
        cond = self._new_block()
        after = self._new_block()
        self._edge(current, body)
        body_end = self._lower(stmt.body, body, _LoopContext(after, cond))
        if body_end is not None:
            self._edge(body_end, cond)
        self._append(cond, Element(COND, stmt.cond, stmt))
        self._edge(cond, body, "true")
        self._edge(cond, after, "false")
        return after

    def _lower_for(self, stmt: ast.For, current: int, ctx: _LoopContext) -> int:
        if isinstance(stmt.init, ast.Expr):
            self._append(current, Element(EXPR, stmt.init, stmt))
        elif isinstance(stmt.init, ast.Declaration):
            self._lower_declaration(stmt.init, stmt, current)
        header = self._new_block()
        after = self._new_block()
        self._edge(current, header)
        body = self._new_block()
        if stmt.cond is not None:
            self._append(header, Element(COND, stmt.cond, stmt))
            self._edge(header, body, "true")
            self._edge(header, after, "false")
        else:
            self._edge(header, body)
        step = self._new_block()
        body_end = self._lower(stmt.body, body, _LoopContext(after, step))
        if body_end is not None:
            self._edge(body_end, step)
        if stmt.step is not None:
            self._append(step, Element(EXPR, stmt.step, stmt))
        self._edge(step, header)
        return after

    def _lower_switch(self, stmt: ast.Switch, current: int, ctx: _LoopContext) -> int:
        self._append(current, Element(COND, stmt.cond, stmt))
        after = self._new_block()
        case_blocks = [self._new_block() for _ in stmt.cases]
        has_default = False
        for case, block in zip(stmt.cases, case_blocks):
            label = "default" if case.value is None else "case"
            has_default = has_default or case.value is None
            self._edge(current, block, label)
        if not has_default:
            self._edge(current, after, "default")
        inner = _LoopContext(after, ctx.continue_target)
        fall_through: Optional[int] = None
        for case, block in zip(stmt.cases, case_blocks):
            if fall_through is not None:
                self._edge(fall_through, block)
            fall_through = self._lower_sequence(case.stmts, block, inner)
        if fall_through is not None:
            self._edge(fall_through, after)
        return after


def build_cfg(func: ast.FuncDef) -> CFG:
    """Build the control-flow graph of ``func``'s body."""
    builder = _Builder(func.name)
    end = builder._lower(func.body, builder.entry, _LoopContext(None, None))
    if end is not None:
        builder._edge(end, builder.exit)
    return CFG(
        function=func.name,
        blocks=builder.blocks,
        entry=builder.entry,
        exit=builder.exit,
    )
