"""A forward-dataflow fixpoint solver over :mod:`repro.dataflow.cfg` graphs.

The solver is deliberately small: an analysis supplies

* ``entry_state`` — the abstract state at function entry;
* ``transfer(block, state)`` — a *pure* function returning the state after
  executing every element of ``block`` on ``state``;
* ``join(a, b)`` — the lattice join applied where control-flow paths merge.

``solve_forward`` runs a worklist iteration until no block's input state
changes, which handles loops (back edges feed the loop header until the
fixpoint) and if/else merges (both arms joined, never leaked into each
other).  Unreachable blocks keep the input state ``None`` (bottom): the
transfer function is never applied to them and joins ignore them.

Since the condition-aware refactor (:mod:`repro.dataflow.consts`) the solver
is edge-aware: an optional ``edge_refine(block, pos, edge, out_state)`` hook
runs on every outgoing edge and may *refine* the propagated state with
branch facts, or return the :data:`INFEASIBLE` sentinel to cut the edge
entirely — the product-lattice step that keeps constant-false arms at
bottom instead of joining them at the merge.  Analyses that pre-solve the
constant component pass :func:`repro.dataflow.consts.refined_edges` here.

Termination is the analysis's responsibility in principle (states must stop
changing), but all the repro's lattices are finite; a generous iteration
cap turns a non-converging transfer into a loud error instead of a hang.

Lattices with infinite ascending chains (the interval domain of
:mod:`repro.dataflow.intervals`) pass a ``widen`` hook: after a block's
input has been updated ``WIDEN_DELAY`` times, further updates go through
``widen(old, new)`` instead of plain join, which must jump far enough up
the lattice to make the chain finite.  Counting *updates per target block*
rather than detecting back edges keeps the solver oblivious to loop
structure — irreducible flow (``goto`` into a loop) widens just the same.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator, Optional

from .cfg import CFG, BasicBlock, Edge

TransferFn = Callable[[BasicBlock, Any], Any]
JoinFn = Callable[[Any, Any], Any]
EdgeRefineFn = Callable[[BasicBlock, int, Edge, Any], Any]

#: Sentinel an ``edge_refine`` hook returns to mark an edge as never taken.
INFEASIBLE = object()

#: Upper bound on worklist pops per block before declaring divergence.
MAX_VISITS_PER_BLOCK = 1000

#: Joins a block input absorbs before further updates are widened.
WIDEN_DELAY = 3


class FixpointDivergence(RuntimeError):
    """Raised when a transfer/join pair fails to converge (lattice bug)."""


def solve_forward(
    cfg: CFG,
    transfer: TransferFn,
    join: JoinFn,
    entry_state: Any,
    edge_refine: Optional[EdgeRefineFn] = None,
    widen: Optional[JoinFn] = None,
    widen_delay: int = WIDEN_DELAY,
) -> list[Optional[Any]]:
    """Solve a forward dataflow problem; returns per-block *input* states.

    The result is indexed by block index; ``None`` marks blocks no path
    reaches — whether because no edge leads there at all or because every
    edge leading there was refined away as infeasible.  Output states are
    recomputed on demand by re-applying ``transfer`` (see
    :func:`iter_elements` for the recording pass).

    ``widen``, when supplied, replaces the join for a target block once its
    input state has already changed ``widen_delay`` times — the delay lets
    small constant loops settle exactly before bounds are thrown away.
    """
    in_states: list[Optional[Any]] = [None] * len(cfg.blocks)
    in_states[cfg.entry] = entry_state
    worklist: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    updates = [0] * len(cfg.blocks)
    visits = 0
    budget = MAX_VISITS_PER_BLOCK * max(1, len(cfg.blocks))
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        visits += 1
        if visits > budget:
            raise FixpointDivergence(
                f"dataflow did not converge in {cfg.function} "
                f"({len(cfg.blocks)} blocks, {visits} visits)"
            )
        block = cfg.blocks[index]
        out_state = transfer(block, in_states[index])
        for pos, edge in enumerate(block.succs):
            edge_state = out_state
            if edge_refine is not None:
                edge_state = edge_refine(block, pos, edge, out_state)
                if edge_state is INFEASIBLE:
                    continue
            current = in_states[edge.target]
            merged = edge_state if current is None else join(current, edge_state)
            if merged != current:
                if (
                    widen is not None
                    and current is not None
                    and updates[edge.target] >= widen_delay
                ):
                    merged = widen(current, merged)
                    if merged == current:
                        continue
                updates[edge.target] += 1
                in_states[edge.target] = merged
                if edge.target not in queued:
                    queued.add(edge.target)
                    worklist.append(edge.target)
    return in_states


def reachable_blocks(
    cfg: CFG,
    in_states: list[Optional[Any]],
) -> Iterator[tuple[BasicBlock, Any]]:
    """Yield ``(block, input_state)`` for every reachable block, in index order.

    This drives the recording pass: after :func:`solve_forward` converges,
    an analysis replays each reachable block exactly once, stepping its own
    per-element transfer from the solved input state to emit facts
    (acquisition sites, atomic call sites, checked variables) against the
    exact state that reaches each element.  Block-index order makes the
    emitted facts deterministic and approximately source-ordered.
    """
    for block in cfg.blocks:
        state = in_states[block.index]
        if state is not None:
            yield block, state
