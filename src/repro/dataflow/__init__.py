"""Flow-sensitive dataflow core shared by every checker.

The package has two halves:

* :mod:`repro.dataflow.cfg` — a control-flow-graph builder over MiniC
  function bodies: basic blocks for ``if``/``else``, loops, ``switch``,
  early ``return``, ``break``/``continue`` and ``goto``/labels, with edges
  carrying branch information.
* :mod:`repro.dataflow.solver` — a small forward-dataflow fixpoint solver:
  lattice join at merge points, loop iteration to a fixpoint, plus the
  replay helper the analyses use to record facts against the solved
  per-block input states.

The flat ``walk()`` scans the checkers used before this package existed let
analysis state leak across exclusive branches (a lock taken in a then-branch
was "held" in the else-branch).  Running on the CFG, each branch is analysed
with exactly the state that reaches it, and merge points combine the branch
states through an analysis-chosen join.
"""

from .cfg import COND, DECL, EXPR, RETURN, CFG, BasicBlock, Edge, Element, build_cfg
from .solver import FixpointDivergence, reachable_blocks, solve_forward

__all__ = [
    "CFG",
    "BasicBlock",
    "COND",
    "DECL",
    "EXPR",
    "RETURN",
    "Edge",
    "Element",
    "build_cfg",
    "FixpointDivergence",
    "reachable_blocks",
    "solve_forward",
]
