"""Flow-sensitive and interprocedural dataflow core shared by every checker.

The package has two layers:

* the *intraprocedural* half — :mod:`repro.dataflow.cfg` builds
  control-flow graphs over MiniC function bodies (basic blocks for
  ``if``/``else``, loops, ``switch``, early ``return``,
  ``break``/``continue`` and ``goto``/labels, with edges carrying branch
  information), :mod:`repro.dataflow.solver` is a small forward-dataflow
  fixpoint solver: lattice join at merge points, loop iteration to a
  fixpoint, an ``edge_refine`` hook for branch-edge facts and pruning, plus
  the replay helper the analyses use to record facts against the solved
  per-block input states — and :mod:`repro.dataflow.consts` is the
  condition-aware layer: a constant-propagation lattice whose solved
  per-function facts mark constant-false branch edges infeasible, so every
  client lattice skips provably-dead arms instead of joining them.
* the *interprocedural* half — :mod:`repro.dataflow.summaries` defines the
  per-function :class:`FunctionSummary` lattice element (lock delta,
  may-return-held, IRQ delta, may-block, error-return set, frame size and
  stack depth) and its transfer/join functions;
  :mod:`repro.dataflow.interproc` condenses the call graph into SCCs
  (Tarjan, bottom-up order, parallel-scheduling waves) and solves every
  function's summary callees-first, iterating recursive components to a
  fixpoint.

The flat ``walk()`` scans the checkers used before this package existed let
analysis state leak across exclusive branches (a lock taken in a then-branch
was "held" in the else-branch).  Running on the CFG, each branch is analysed
with exactly the state that reaches it, and merge points combine the branch
states through an analysis-chosen join.  The summary layer extends the same
discipline across function boundaries: what a flat scan would re-discover in
every caller is computed once per callee and applied at each call site.
"""

from .cfg import COND, DECL, EXPR, RETURN, CFG, BasicBlock, Edge, Element, build_cfg
from .consts import (
    ConstDomain,
    FunctionConsts,
    consts_of,
    eval_const,
    refined_edges,
    solve_function_consts,
    solve_program_consts,
)
from .context import AnalysisContext
from .domains import (
    DEFAULT_DOMAINS,
    DOMAIN_REGISTRY,
    AbstractDomain,
    FunctionFacts,
    domain_fingerprint,
    facts_of,
    solve_function_facts,
    solve_program_facts,
)
from .intervals import IntervalDomain, eval_interval, interval_condition_facts
from .octagons import (
    OctagonDomain,
    add_octagon_constraint,
    close_octagon,
    entails_octagon,
    freeze_octagon_env,
    join_octagon_envs,
    narrow_octagon_envs,
    octagon_condition_facts,
    thaw_octagon_env,
    widen_octagon_envs,
)
from .interproc import (
    Condensation,
    SummaryDivergence,
    callgraph_fingerprint,
    condense_callgraph,
    solve_scc,
    solve_summaries,
)
from .solver import INFEASIBLE, FixpointDivergence, reachable_blocks, solve_forward
from .summaries import FunctionSummary, SummaryContext, build_context

__all__ = [
    "AbstractDomain",
    "AnalysisContext",
    "CFG",
    "BasicBlock",
    "COND",
    "Condensation",
    "ConstDomain",
    "DECL",
    "DEFAULT_DOMAINS",
    "DOMAIN_REGISTRY",
    "EXPR",
    "FunctionConsts",
    "FunctionFacts",
    "FunctionSummary",
    "INFEASIBLE",
    "IntervalDomain",
    "OctagonDomain",
    "RETURN",
    "Edge",
    "Element",
    "SummaryContext",
    "SummaryDivergence",
    "add_octagon_constraint",
    "build_cfg",
    "build_context",
    "callgraph_fingerprint",
    "close_octagon",
    "condense_callgraph",
    "consts_of",
    "domain_fingerprint",
    "entails_octagon",
    "eval_const",
    "eval_interval",
    "facts_of",
    "FixpointDivergence",
    "freeze_octagon_env",
    "interval_condition_facts",
    "join_octagon_envs",
    "narrow_octagon_envs",
    "octagon_condition_facts",
    "reachable_blocks",
    "refined_edges",
    "solve_forward",
    "solve_function_consts",
    "solve_function_facts",
    "solve_program_consts",
    "solve_program_facts",
    "solve_scc",
    "solve_summaries",
    "thaw_octagon_env",
    "widen_octagon_envs",
]
