"""Per-function summaries: the interprocedural lattice element.

A :class:`FunctionSummary` condenses everything a *caller* needs to know
about a callee into a small immutable record:

* **lock delta** — the net must-hold lock change from entry to return
  (``locks_held``), the locks it may release on the caller's behalf
  (``locks_released``), the locks possibly still held at *some* return
  (``may_return_held``) and every lock it may transitively acquire
  (``acquires``);
* **IRQ delta** — the net may-change to the interrupt-disable depth
  (``irq_delta``; ``+1`` for a helper that returns with IRQs off);
* **may-block** — whether the function can reach a blocking primitive,
  the summary that replaces the old whole-program backwards propagation;
* **error-return set** — the negative error codes the function may return,
  directly or by propagating a callee's error return;
* **frame size / stack depth** — the stack-check facts, so the deepest
  call chain falls out of the same bottom-up sweep.

Summaries are computed bottom-up over the SCC condensation of the call
graph (:mod:`repro.dataflow.interproc`); recursion converges by iterating
each SCC to a fixpoint of the (finite, capped) lattice.  This module is
deliberately independent of :mod:`repro.blockstop` — the primitive tables
and the GFP constant folding live here and are re-exported by the checkers
that historically owned them.

Since the condition-aware refactor the per-function computation runs over
the *pruned* CFG (:mod:`repro.dataflow.consts`): a lock acquired, a
blocking primitive reached, or an error code returned only inside a
constant-false arm contributes nothing to the summary, so the imprecision
never compounds through callers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from ..annotations.attrs import AnnotationKind
from ..machine.interpreter import ctype_size
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.pretty import render_expression
from ..minic.visitor import walk
from .cfg import RETURN, build_cfg
from .consts import eval_const, refined_edges
from .domains import FunctionFacts, facts_of
from .solver import solve_forward

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a package cycle
    from ..blockstop.callgraph import CallGraph

# ---------------------------------------------------------------------------
# Primitive tables (single source of truth; the checkers re-export these)
# ---------------------------------------------------------------------------

#: Calls that disable interrupts until the matching enable.
IRQ_DISABLE_CALLS = frozenset(
    {
        "local_irq_disable",
        "local_irq_save",
        "spin_lock_irqsave",
        "spin_lock_irq",
        "__hw_cli",
        "cli",
    }
)
IRQ_ENABLE_CALLS = frozenset(
    {
        "local_irq_enable",
        "local_irq_restore",
        "spin_unlock_irqrestore",
        "spin_unlock_irq",
        "__hw_sti",
        "sti",
    }
)

#: Lock acquisition primitives, mapped to whether they also disable IRQs.
LOCK_ACQUIRE_CALLS = {"spin_lock": False, "spin_lock_irqsave": True, "spin_lock_irq": True}
LOCK_RELEASE_CALLS = frozenset({"spin_unlock", "spin_unlock_irqrestore", "spin_unlock_irq"})

#: Bit the corpus uses for "this allocation may wait" (mirrors __GFP_WAIT).
GFP_WAIT_BIT = 0x10

#: Builtins that are known to never sleep (the machine executes them inline).
NONBLOCKING_BUILTINS = frozenset(
    {
        "memset",
        "memcpy",
        "memmove",
        "memcmp",
        "strlen",
        "strcpy",
        "strncpy",
        "strcmp",
        "strncmp",
        "printk",
        "panic",
        "BUG",
        "WARN",
        "__raw_alloc",
        "__raw_free",
        "__raw_size",
        "__hw_cli",
        "__hw_sti",
        "__hw_save_flags",
        "__hw_restore_flags",
        "__hw_irqs_disabled",
        "__hw_in_interrupt",
        "__hw_context_switch",
        "__hw_syscall_overhead",
        "__hw_cycles",
        "smp_processor_id",
        "__copy_block",
        "__hw_might_sleep",
        "__ccount_delay_begin",
        "__ccount_delay_end",
        "__ccount_rtti",
        "__ccount_rc_inc",
        "__ccount_rc_dec",
        "__ccount_memcpy",
        "__ccount_memset",
        "__ccount_ptr_write",
        "__ccount_refcount",
        "__deputy_check_ptr",
        "__deputy_check_nonnull",
        "__deputy_check_index",
        "__deputy_check_count",
        "__deputy_check_nt",
        "__deputy_check_union",
        "__deputy_check_cast",
        "__blockstop_assert_irqs_enabled",
    }
)

#: Widening caps keeping the summary lattice finite under recursion.
IRQ_DEPTH_CAP = 64
LOCK_COUNT_CAP = 8

#: Fixed per-call stack overhead (saved registers, return address), in bytes.
FRAME_OVERHEAD = 32


def flags_may_wait(call: ast.Call) -> bool:
    """Conservatively decide whether an allocator call may pass GFP_WAIT."""
    if not call.args:
        return True
    constant = constant_of(call.args[-1])
    if constant is None:
        return True
    return bool(constant & GFP_WAIT_BIT)


def constant_of(expr: ast.Expr) -> int | None:
    """Fold an integer-constant expression, or None when it is not one.

    Delegates to the constants lattice's evaluator
    (:func:`repro.dataflow.consts.eval_const`) with an empty environment —
    one folding engine for GFP flags, error codes and branch conditions.
    """
    return eval_const(expr)


# ---------------------------------------------------------------------------
# The summary record
# ---------------------------------------------------------------------------

#: Sorted (lock name, non-zero count) pairs; immutable so summaries hash.
LockDelta = tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class FunctionSummary:
    """Everything a caller needs to know about one function."""

    name: str = ""
    defined: bool = True
    may_block: bool = False
    irq_delta: int = 0
    locks_held: LockDelta = ()  # must-held at return, net of entry
    locks_released: LockDelta = ()  # may-released beyond own acquisitions
    may_return_held: tuple[str, ...] = ()
    acquires: tuple[str, ...] = ()  # locks transitively may-acquired
    error_returns: tuple[int, ...] = ()
    frame_size: int = 0
    stack_depth: int = 0  # frame + deepest bounded callee chain

    @property
    def trivial_lock_effect(self) -> bool:
        return not (self.locks_held or self.locks_released or self.may_return_held or self.acquires)

    @property
    def returns_error(self) -> bool:
        return bool(self.error_returns)

    def describe(self) -> str:
        parts = []
        if self.may_block:
            parts.append("may-block")
        if self.irq_delta:
            parts.append(f"irq{self.irq_delta:+d}")
        if self.locks_held:
            parts.append("holds " + ",".join(f"{l}x{c}" for l, c in self.locks_held))
        if self.locks_released:
            parts.append("releases " + ",".join(f"{l}x{c}" for l, c in self.locks_released))
        if self.may_return_held:
            leaked = set(self.may_return_held) - {l for l, _ in self.locks_held}
            if leaked:
                parts.append("may-leak " + ",".join(sorted(leaked)))
        if self.error_returns:
            parts.append("errors " + ",".join(str(code) for code in self.error_returns))
        parts.append(f"frame {self.frame_size}B depth {self.stack_depth}B")
        return "; ".join(parts)


BOTTOM_SUMMARY = FunctionSummary(name="<bottom>", defined=False)


# ---------------------------------------------------------------------------
# Summary-computation context
# ---------------------------------------------------------------------------


@dataclass
class SummaryContext:
    """Whole-program facts the per-function computation consumes.

    ``resolved_indirect`` maps a caller to the points-to-resolved callees of
    its indirect call sites (the call graph stores them merged per caller,
    and the summary computation applies the same granularity).
    """

    program: Program
    blocking_seeds: frozenset[str] = frozenset()
    conditional_seeds: frozenset[str] = frozenset()
    errcode_annotated: frozenset[str] = frozenset()
    resolved_indirect: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Per-function constant facts; seeded from the engine's keyed artifact
    #: when available, filled lazily (memoized) otherwise.
    consts: dict[str, FunctionFacts | None] = field(default_factory=dict)


def build_context(
    program: Program,
    graph: "CallGraph",
    consts: dict[str, FunctionFacts | None] | None = None,
) -> SummaryContext:
    """Derive the summary-computation context from program + call graph."""
    blocking: set[str] = set()
    conditional: set[str] = set()
    errcodes: set[str] = set()
    for name in program.all_function_names():
        annotations = program.function_annotations(name)
        if annotations.has(AnnotationKind.BLOCKING):
            blocking.add(name)
        if annotations.has(AnnotationKind.BLOCKING_IF_WAIT):
            conditional.add(name)
        if annotations.has(AnnotationKind.ERRCODES):
            errcodes.add(name)
    resolved: dict[str, set[str]] = {}
    for site in graph.call_sites:
        if site.indirect:
            resolved.setdefault(site.caller, set()).add(site.callee)
    return SummaryContext(
        program=program,
        blocking_seeds=frozenset(blocking),
        conditional_seeds=frozenset(conditional),
        errcode_annotated=frozenset(errcodes),
        resolved_indirect={caller: frozenset(callees) for caller, callees in resolved.items()},
        consts=dict(consts) if consts else {},
    )


# ---------------------------------------------------------------------------
# The lock/IRQ abstract state and its join
# ---------------------------------------------------------------------------

#: (must lock deltas, may-held lock names, irq depth delta).
SummaryState = tuple[LockDelta, frozenset, int]

ENTRY_STATE: SummaryState = ((), frozenset(), 0)


def _clamp_count(count: int) -> int:
    return max(-LOCK_COUNT_CAP, min(LOCK_COUNT_CAP, count))


def _delta_add(delta: LockDelta, lock: str, amount: int) -> LockDelta:
    counts = dict(delta)
    counts[lock] = _clamp_count(counts.get(lock, 0) + amount)
    return tuple(sorted((l, c) for l, c in counts.items() if c != 0))


def join_states(a: SummaryState, b: SummaryState) -> SummaryState:
    """Join: pointwise-min must deltas, union may set, max IRQ depth.

    ``min`` on the must component is conservative in both directions — a
    lock acquired on only one path is not must-held after the merge, and a
    lock released on only one path must be assumed released.
    """
    must_a, may_a, irq_a = a
    must_b, may_b, irq_b = b
    counts_a, counts_b = dict(must_a), dict(must_b)
    merged = {}
    for lock in set(counts_a) | set(counts_b):
        merged[lock] = min(counts_a.get(lock, 0), counts_b.get(lock, 0))
    must = tuple(sorted((l, c) for l, c in merged.items() if c != 0))
    return (must, may_a | may_b, max(irq_a, irq_b))


def lock_name_of(expr: ast.Expr) -> str:
    """A stable name for a lock argument expression."""
    return render_expression(expr)


@dataclass
class _Effects:
    """Flow-insensitive facts accumulated while stepping a function."""

    acquires: set[str] = field(default_factory=set)


def apply_call(
    call: ast.Call,
    state: SummaryState,
    lookup: Callable[[str], FunctionSummary | None],
    effects: _Effects | None = None,
) -> SummaryState:
    """Step the (locks, IRQ) state over one call expression.

    Primitives (the lock/IRQ tables) are interpreted directly and are never
    summary-applied, so a corpus that *defines* ``spin_lock_irqsave`` over
    ``__hw_cli`` is not double-counted.  Every other named callee applies
    its :class:`FunctionSummary`; unresolved or indirect callees apply
    nothing (the documented imprecision — the points-to candidate sets are
    far too wide to join meaningfully).
    """
    target = call.func
    if not isinstance(target, ast.Ident):
        return state
    name = target.name
    must, may, irq = state
    if name in LOCK_ACQUIRE_CALLS and call.args:
        lock = lock_name_of(call.args[0])
        must = _delta_add(must, lock, 1)
        may = may | {lock}
        if effects is not None:
            effects.acquires.add(lock)
    elif name in LOCK_RELEASE_CALLS and call.args:
        lock = lock_name_of(call.args[0])
        must = _delta_add(must, lock, -1)
        may = may - {lock}
    if name in IRQ_DISABLE_CALLS:
        irq = min(irq + 1, IRQ_DEPTH_CAP)
    elif name in IRQ_ENABLE_CALLS:
        irq = max(irq - 1, -IRQ_DEPTH_CAP)
    elif name not in LOCK_ACQUIRE_CALLS and name not in LOCK_RELEASE_CALLS:
        if name in NONBLOCKING_BUILTINS:
            return (must, may, irq)
        summary = lookup(name)
        if summary is not None and summary.defined:
            for lock, count in summary.locks_released:
                must = _delta_add(must, lock, -count)
                may = may - {lock}
            for lock, count in summary.locks_held:
                must = _delta_add(must, lock, count)
            may = may | set(summary.may_return_held)
            if effects is not None:
                effects.acquires.update(summary.acquires)
            irq = max(-IRQ_DEPTH_CAP, min(irq + summary.irq_delta, IRQ_DEPTH_CAP))
    return (must, may, irq)


def step_element(
    expr: ast.Expr | None,
    state: SummaryState,
    lookup: Callable[[str], FunctionSummary | None],
    effects: _Effects | None = None,
) -> SummaryState:
    """Step the state over every call inside one CFG element (walk order)."""
    if expr is None:
        return state
    for node in walk(expr):
        if isinstance(node, ast.Call):
            state = apply_call(node, state, lookup, effects)
    return state


# ---------------------------------------------------------------------------
# Per-function summary computation
# ---------------------------------------------------------------------------


def _call_may_block(
    call: ast.Call,
    caller: str,
    ctx: SummaryContext,
    lookup: Callable[[str], FunctionSummary | None],
) -> bool:
    target = call.func
    if not isinstance(target, ast.Ident):
        resolved = ctx.resolved_indirect.get(caller, frozenset())
        for callee in resolved:
            if callee in ctx.conditional_seeds:
                continue  # per-site GFP refinement is lost through pointers
            if callee in ctx.blocking_seeds:
                return True
            summary = lookup(callee)
            if summary is not None and summary.may_block:
                return True
        return False
    name = target.name
    if name in NONBLOCKING_BUILTINS:
        return False
    if name in ctx.conditional_seeds:
        return flags_may_wait(call)
    if name in ctx.blocking_seeds:
        return True
    summary = lookup(name)
    return summary is not None and summary.may_block


def _error_codes_of(
    expr: ast.Expr,
    ctx: SummaryContext,
    lookup: Callable[[str], FunctionSummary | None],
) -> frozenset[int]:
    """Error codes ``return expr`` may produce (direct or propagated).

    Constant folding runs first: a return whose value folds to a negative
    constant is an error return even when it is not literally ``-N`` —
    ``return 0 - EINVAL;`` or ``return -(ERR_BASE + 2);`` with ``#define``d
    names count, via the constant lattice's evaluator.
    """
    folded = eval_const(expr)
    if folded is not None:
        return frozenset({folded}) if folded < 0 else frozenset()
    if isinstance(expr, ast.Cast):
        return _error_codes_of(expr.operand, ctx, lookup)
    if isinstance(expr, ast.Comma) and expr.exprs:
        return _error_codes_of(expr.exprs[-1], ctx, lookup)
    if isinstance(expr, ast.Conditional):
        then_codes = _error_codes_of(expr.then, ctx, lookup)
        return then_codes | _error_codes_of(expr.otherwise, ctx, lookup)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        if isinstance(expr.operand, ast.IntLit) and expr.operand.value > 0:
            return frozenset({-expr.operand.value})
        return frozenset()
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident):
        name = expr.func.name
        if name in ctx.errcode_annotated:
            return frozenset({-1})
        summary = lookup(name)
        if summary is not None and summary.error_returns:
            return frozenset(summary.error_returns)
    return frozenset()


def function_frame_size(program: Program, func: ast.FuncDef) -> int:
    """Estimate one function's stack frame: locals + parameters + overhead.

    A ``stacksize(n)`` annotation overrides the estimate, mirroring the
    paper's "stack space annotations on each function".
    """
    annotation = program.function_annotations(func.name).get(AnnotationKind.STACKSIZE)
    if annotation is not None and annotation.args:
        arg = annotation.args[0]
        if isinstance(arg, ast.IntLit):
            return arg.value
    total = FRAME_OVERHEAD
    ftype = func.type.strip()
    for param in getattr(ftype, "params", []):
        total += max(ctype_size(param.type), 4)
    for node in walk(func.body):
        if isinstance(node, ast.Declaration) and not node.is_typedef:
            try:
                total += max(ctype_size(node.type), 4)
            except Exception:
                total += 4
    return total


def _local_names(func: ast.FuncDef) -> frozenset[str]:
    """Parameter and local-variable names of ``func``.

    A lock expression mentioning one of these (``lock``, ``&(cache->lock)``)
    names storage the *caller* cannot name, so it must not escape into the
    exported summary components — callers could only ever false-match it
    against an unrelated identically-rendered expression of their own.
    """
    params = getattr(func.type.strip(), "params", [])
    names = {param.name for param in params if getattr(param, "name", None)}
    for node in walk(func.body):
        if isinstance(node, ast.Declaration) and node.name:
            names.add(node.name)
    return frozenset(names)


def _caller_meaningful(lock: str, local_names: frozenset[str]) -> bool:
    mentioned = set(re.findall(r"[A-Za-z_]\w*", lock))
    return not (mentioned & local_names)


def _live_elements(cfg, func_consts: FunctionFacts):
    """Yield ``(element, expr)`` for every element on a feasible path."""
    for block in cfg.blocks:
        if block.index not in func_consts.reachable:
            continue
        for element in block.elements:
            if element.expr is not None:
                yield element, element.expr


def _needs_cfg(func: ast.FuncDef, lookup: Callable[[str], FunctionSummary | None]) -> bool:
    """Whether any call in ``func`` can move the lock/IRQ state."""
    for node in walk(func.body):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Ident):
            continue
        name = node.func.name
        if name in LOCK_ACQUIRE_CALLS or name in LOCK_RELEASE_CALLS:
            return True
        if name in IRQ_DISABLE_CALLS or name in IRQ_ENABLE_CALLS:
            return True
        if name in NONBLOCKING_BUILTINS:
            continue
        summary = lookup(name)
        if summary is None or not summary.defined:
            continue
        if not summary.trivial_lock_effect or summary.irq_delta != 0:
            return True
    return False


def compute_summary(
    name: str,
    ctx: SummaryContext,
    lookup: Callable[[str], FunctionSummary | None],
    frame_size: int | None = None,
) -> FunctionSummary:
    """Compute one function's summary given its callees' current summaries.

    ``lookup`` returns the current summary of a callee — for same-SCC
    callees that is the previous fixpoint iterate (bottom on the first
    round), which is what makes recursion converge by lattice ascent.
    """
    program = ctx.program
    func = program.functions.get(name)
    if func is None:
        return replace(
            BOTTOM_SUMMARY,
            name=name,
            may_block=name in ctx.blocking_seeds,
            error_returns=(-1,) if name in ctx.errcode_annotated else (),
        )
    func_consts = facts_of(func, cache=ctx.consts)
    cfg = None
    may_block = name in ctx.blocking_seeds
    error_codes: set[int] = set()
    if func_consts is not None and func_consts.prunes:
        # Condition-aware sweep: only expressions in blocks some feasible
        # path reaches contribute.  A blocking call or an error return
        # inside an ``if (0)`` arm must not escape into the summary — that
        # is exactly what lets a conditionally-dead bug stop reporting
        # ``may-block``/``may-return-held`` to every transitive caller.
        cfg = build_cfg(func)
        for element, expr in _live_elements(cfg, func_consts):
            if not may_block:
                for node in walk(expr):
                    if isinstance(node, ast.Call) and _call_may_block(node, name, ctx, lookup):
                        may_block = True
                        break
            if element.kind == RETURN:
                error_codes |= _error_codes_of(expr, ctx, lookup)
    else:
        for node in walk(func.body):
            if isinstance(node, ast.Call) and not may_block:
                if _call_may_block(node, name, ctx, lookup):
                    may_block = True
            if isinstance(node, ast.Return) and node.value is not None:
                error_codes |= _error_codes_of(node.value, ctx, lookup)
    if name in ctx.errcode_annotated:
        error_codes.add(-1)

    effects = _Effects()
    exit_state = ENTRY_STATE
    if _needs_cfg(func, lookup):
        cfg = cfg or build_cfg(func)

        def transfer(block, state: SummaryState) -> SummaryState:
            for element in block.elements:
                state = step_element(element.expr, state, lookup, effects)
            return state

        in_states = solve_forward(
            cfg,
            transfer,
            join_states,
            entry_state=ENTRY_STATE,
            edge_refine=refined_edges(func_consts),
        )
        solved_exit = in_states[cfg.exit]
        exit_state = solved_exit if solved_exit is not None else ENTRY_STATE

    must, may, irq = exit_state
    local_names = _local_names(func)

    def exported(lock: str) -> bool:
        return _caller_meaningful(lock, local_names)

    if frame_size is None:
        frame_size = function_frame_size(program, func)
    return FunctionSummary(
        name=name,
        defined=True,
        may_block=may_block,
        irq_delta=irq,
        locks_held=tuple(sorted((l, c) for l, c in must if c > 0 and exported(l))),
        locks_released=tuple(sorted((l, -c) for l, c in must if c < 0 and exported(l))),
        may_return_held=tuple(sorted(l for l in may if exported(l))),
        acquires=tuple(sorted(l for l in effects.acquires if exported(l))),
        error_returns=tuple(sorted(error_codes)),
        frame_size=frame_size,
        stack_depth=0,  # filled in by the SCC solver (needs callee depths)
    )
