"""The shared analysis context every checker adapter consumes.

Before this type existed, each checker entry point took its own ad-hoc
positional tail of prebuilt artifacts (``run_blockstop(program, precision,
runtime_checks, graph, blocking, irq_handlers, summaries, consts)``,
``collect_lock_facts(program, functions, summaries, consts)``, …) and the
engine threaded each artifact by hand per analysis.  :class:`AnalysisContext`
is the one bundle the engine builds once per run from its
``SharedArtifacts`` and hands to every checker: the parsed program, the
Deputy type environments, the call graph, the interprocedural summaries and
the solved condition facts (the consts×intervals product).

This lives in ``dataflow`` rather than ``engine`` on purpose: the checkers
in :mod:`repro.analyses` must not import the engine (the engine imports
*them*), and the engine already depends on dataflow — so this is the lowest
layer both sides can share without a cycle.

Every field except ``program`` defaults to ``None``: the standalone checker
entry points (kept as thin wrappers for scripts and tests) build a context
with only what they were given, and each checker computes what is missing
exactly as it did before the consolidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.program import Program


@dataclass
class AnalysisContext:
    """Prebuilt artifacts shared by all checkers in one engine run."""

    #: The linked whole-kernel program under analysis.
    program: "Program"
    #: Deputy per-function type environments (``deputy.envs.EnvCache``).
    type_envs: Optional[Any] = None
    #: The whole-program call graph (``analyses.callgraph.CallGraph``).
    call_graph: Optional[Any] = None
    #: SCC-ordered interprocedural summaries, name -> ``FunctionSummary``.
    summaries: Optional[dict] = None
    #: Solved condition facts, name -> ``FunctionFacts`` (or ``None`` for
    #: branchless functions); the consts×intervals reduced product.
    facts: Optional[dict] = None
    #: The subset of function names this shard analyses (``None`` = all).
    functions: Optional[list] = None
    #: Checker-specific prebuilt inputs that have no cross-checker home
    #: (blockstop's blocking/irq sets, errcheck's error-returning names).
    extras: dict = field(default_factory=dict)

    def with_functions(self, functions: Optional[list]) -> "AnalysisContext":
        """A shallow copy scoped to one shard's function subset."""
        return AnalysisContext(
            program=self.program,
            type_envs=self.type_envs,
            call_graph=self.call_graph,
            summaries=self.summaries,
            facts=self.facts,
            functions=functions,
            extras=self.extras,
        )
