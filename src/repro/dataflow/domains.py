"""The pluggable abstract-domain API and the reduced-product solver.

Before this module, the condition-facts pipeline was hard-coded to constant
propagation: the engine solved :class:`repro.dataflow.consts.FunctionConsts`
per function, checkers consumed its ``infeasible`` set through
``refined_edges``, and adding a second lattice meant touching the solver,
every checker, the summaries, both artifact layers and the Deputy
optimizer.  This module is the API seam that makes domains *pluggable*:

* :class:`AbstractDomain` — the protocol a domain implements
  (``bottom``/``initial``/``transfer``/``join``/``widen``/``narrow``/
  ``refine_edge``/``freeze``).  A domain transfers **per CFG element** and
  receives a *product snapshot* — the other domains' states before the
  element — so components can reduce each other (intervals fold through the
  constant environment) without a hand-written product transfer per pair.
* :func:`solve_function_facts` — the generic reduced-product fixpoint:
  one :func:`repro.dataflow.solver.solve_forward` run over tuple states,
  widening per domain once a block's input churns, a bounded narrowing
  sweep to claw back over-widened bounds, then a recording pass that
  freezes per-domain environments and attributes each infeasible edge to
  the *first* domain (in registry order) that proves it dead.
* :class:`FunctionFacts` — the cacheable artifact, a drop-in for
  ``FunctionConsts`` everywhere (`.reachable`/`.prunes`/`.infeasible`/
  ``.in_envs``/``.edge_facts`` keep their exact meaning; the interval
  component adds ``interval_envs`` and the interval-only ``interval_pruned``
  attribution the stats layer reports separately).

``refined_edges`` is unchanged and re-exported: it reads only
``.infeasible``, so every client lattice consumes the product exactly as it
consumed bare constants — the reduced-product composition argument from
consts.py carries over because no registered domain depends on any client
component.

Registering a domain is adding one entry to :data:`DOMAIN_REGISTRY`; the
engine and the incremental service salt their artifact keys with the domain
tuple, so flipping the set invalidates persisted facts instead of
misinterpreting them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional, Protocol

from ..minic import ast_nodes as ast
from .cfg import CFG, BasicBlock, Edge, build_cfg
from .consts import (
    CONST_SOLVE_COUNTS,
    ConstDomain,
    FunctionConsts,
    has_branches,
    refined_edges,
    trackable_names,
)
from .intervals import FrozenIntervalEnv, IntervalDomain
from .octagons import FrozenOctEnv, OctagonDomain
from .solver import INFEASIBLE, solve_forward

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.program import Program

__all__ = [
    "AbstractDomain",
    "DEFAULT_DOMAINS",
    "DOMAIN_REGISTRY",
    "FunctionFacts",
    "domain_fingerprint",
    "facts_of",
    "refined_edges",
    "solve_function_facts",
    "solve_program_facts",
]


class AbstractDomain(Protocol):
    """What a pluggable domain implements.  Structural — no subclassing.

    A domain instance is built per function solve with
    ``Domain(func, cfg, safe)`` where ``safe`` is the function's trackable
    name set.  States are opaque to the product solver; ``None`` (⊥) never
    reaches a domain — the solver holds bottom itself.
    """

    name: str

    def bottom(self) -> None: ...

    def initial(self) -> Any:
        """The state at function entry."""
        ...

    def transfer(self, element, state: Any, product: Mapping[str, Any]) -> Any:
        """The state after one CFG element; ``product`` maps domain name to
        that domain's state *before* the element (the reduction input)."""
        ...

    def join(self, a: Any, b: Any) -> Any: ...

    def widen(self, old: Any, new: Any) -> Any:
        """Accelerated join for infinite-chain lattices; plain join is fine
        for finite-height domains."""
        ...

    def narrow(self, old: Any, new: Any) -> Any:
        """Decreasing-iteration step; return ``old`` to opt out."""
        ...

    def refine_edge(self, block, pos: int, edge, state: Any, product: Mapping[str, Any]) -> Any:
        """Refined state for one outgoing edge, or :data:`INFEASIBLE`."""
        ...

    def freeze(self, state: Any) -> Any:
        """Canonical hashable form for artifact storage."""
        ...


#: name -> domain factory ``(func, cfg, safe) -> AbstractDomain``.
DOMAIN_REGISTRY: dict[str, Any] = {
    "consts": ConstDomain,
    "intervals": IntervalDomain,
    "octagons": OctagonDomain,
}

#: The product every engine path solves unless configured otherwise.
DEFAULT_DOMAINS: tuple[str, ...] = ("consts", "intervals", "octagons")

#: Bounded decreasing iteration after the widened fixpoint.
NARROW_ROUNDS = 2


def domain_fingerprint(domains: tuple[str, ...] = DEFAULT_DOMAINS) -> str:
    """The cache-key salt for a domain set (order-sensitive on purpose)."""
    return "+".join(domains)


@dataclass
class FunctionFacts(FunctionConsts):
    """One function's solved product facts — the engine-cacheable artifact.

    A literal subclass of ``FunctionConsts``: every consumer that reads
    ``.in_envs`` / ``.edge_facts`` / ``.infeasible`` / ``.prunes`` /
    ``.reachable`` keeps working unchanged (including ``isinstance``
    checks), the keys are still the deterministic CFG block numbering, and
    ``infeasible`` is the *union* over all domains — the interval-only and
    octagon-only subsets are attributed separately in ``interval_pruned``
    and ``octagon_pruned``.
    """

    #: The domain product this artifact was solved under (key-salt twin).
    domains: tuple[str, ...] = DEFAULT_DOMAINS
    #: Per-block interval input environments (only non-⊤ names appear;
    #: blocks whose interval env is all-⊤ are absent entirely).
    interval_envs: dict[int, FrozenIntervalEnv] = field(default_factory=dict)
    #: The subset of ``infeasible`` only the interval component proves dead.
    interval_pruned: frozenset[tuple[int, int]] = frozenset()
    #: Per-block closed octagon input environments (empty envs are absent).
    octagon_envs: dict[int, FrozenOctEnv] = field(default_factory=dict)
    #: The subset of ``infeasible`` only the octagon component proves dead.
    octagon_pruned: frozenset[tuple[int, int]] = frozenset()
    #: Per feasible edge: the relational constraints the branch adds beyond
    #: the source block's out-state (the ``cfg --format json`` dump reads
    #: this; empty deltas are absent).
    octagon_edge_facts: dict[tuple[int, int], FrozenOctEnv] = field(
        default_factory=dict
    )


def solve_function_facts(
    func: ast.FuncDef,
    cfg: Optional[CFG] = None,
    domains: tuple[str, ...] = DEFAULT_DOMAINS,
) -> FunctionFacts:
    """Run the reduced product of ``domains`` to fixpoint over one function.

    One generic solve: tuple states, per-element product snapshots, widening
    once a block's input has churned past the solver's delay, then
    :data:`NARROW_ROUNDS` of decreasing iteration, then the recording pass.
    Counts against ``CONST_SOLVE_COUNTS`` — the facts solve *is* the consts
    solve, grown a component — so the incremental-invalidation tests keep
    measuring exactly the work the service avoids.
    """
    CONST_SOLVE_COUNTS[func.name] += 1
    cfg = cfg or build_cfg(func)
    safe = trackable_names(func)
    insts = [DOMAIN_REGISTRY[name](func, cfg, safe) for name in domains]

    def transfer(block: BasicBlock, states: tuple) -> tuple:
        current = list(states)
        for element in block.elements:
            snapshot = {d.name: s for d, s in zip(insts, current)}
            current = [d.transfer(element, s, snapshot) for d, s in zip(insts, current)]
        return tuple(current)

    def join(a: tuple, b: tuple) -> tuple:
        return tuple(d.join(x, y) for d, x, y in zip(insts, a, b))

    def widen(old: tuple, new: tuple) -> tuple:
        return tuple(d.widen(x, y) for d, x, y in zip(insts, old, new))

    def refine(block: BasicBlock, pos: int, edge: Edge, states: tuple):
        snapshot = {d.name: s for d, s in zip(insts, states)}
        refined = []
        for d, s in zip(insts, states):
            outcome = d.refine_edge(block, pos, edge, s, snapshot)
            if outcome is INFEASIBLE:
                return INFEASIBLE
            refined.append(outcome)
        return tuple(refined)

    entry = tuple(d.initial() for d in insts)
    in_states = solve_forward(cfg, transfer, join, entry, edge_refine=refine, widen=widen)
    _narrow(cfg, insts, transfer, join, refine, in_states)
    return _record(cfg, domains, insts, transfer, in_states)


def _narrow(cfg, insts, transfer, join, refine, in_states) -> None:
    """Bounded decreasing iteration from the post-widening fixpoint.

    Each round recomputes every reachable block's input as the join of its
    feasible, refined predecessor outputs and lets each domain *narrow*
    toward it — finite widened bounds stay put, only bounds widening threw
    to ±∞ are refilled, so the sweep terminates and stays above the least
    fixpoint.  Reachability is never revised downward here: a block with no
    currently-feasible predecessor keeps its state rather than dropping to
    ⊥ mid-sweep.
    """
    preds: list[list[tuple[int, int, Edge]]] = [[] for _ in cfg.blocks]
    for block in cfg.blocks:
        for pos, edge in enumerate(block.succs):
            preds[edge.target].append((block.index, pos, edge))
    for _ in range(NARROW_ROUNDS):
        changed = False
        for block in cfg.blocks:
            index = block.index
            if index == cfg.entry or in_states[index] is None:
                continue
            merged = None
            for pred_index, pos, edge in preds[index]:
                pred_state = in_states[pred_index]
                if pred_state is None:
                    continue
                out_state = transfer(cfg.blocks[pred_index], pred_state)
                refined = refine(cfg.blocks[pred_index], pos, edge, out_state)
                if refined is INFEASIBLE:
                    continue
                merged = refined if merged is None else join(merged, refined)
            if merged is None:
                continue
            narrowed = tuple(
                d.narrow(old, new) for d, old, new in zip(insts, in_states[index], merged)
            )
            if narrowed != in_states[index]:
                in_states[index] = narrowed
                changed = True
        if not changed:
            break


def _record(cfg, domains, insts, transfer, in_states) -> FunctionFacts:
    """Freeze the solved states and attribute every pruned edge."""
    result = FunctionFacts(
        function=cfg.function, domains=tuple(domains), block_count=len(cfg.blocks)
    )
    by_name = {d.name: i for i, d in enumerate(insts)}
    const_slot = by_name.get("consts")
    interval_slot = by_name.get("intervals")
    octagon_slot = by_name.get("octagons")
    infeasible: set[tuple[int, int]] = set()
    interval_pruned: set[tuple[int, int]] = set()
    octagon_pruned: set[tuple[int, int]] = set()
    for block in cfg.blocks:
        states = in_states[block.index]
        if states is None:
            continue
        if const_slot is not None:
            result.in_envs[block.index] = insts[const_slot].freeze(states[const_slot])
        if interval_slot is not None:
            frozen = insts[interval_slot].freeze(states[interval_slot])
            if frozen:
                result.interval_envs[block.index] = frozen
        if octagon_slot is not None:
            frozen = insts[octagon_slot].freeze(states[octagon_slot])
            if frozen:
                result.octagon_envs[block.index] = frozen
        out_states = transfer(block, states)
        snapshot = {d.name: s for d, s in zip(insts, out_states)}
        for pos, edge in enumerate(block.succs):
            pruned_by = None
            oct_refined = None
            for d, s in zip(insts, out_states):
                outcome = d.refine_edge(block, pos, edge, s, snapshot)
                if outcome is INFEASIBLE:
                    pruned_by = d.name
                    break
                if d.name == "octagons":
                    oct_refined = outcome
            if pruned_by is not None:
                infeasible.add((block.index, pos))
                if pruned_by == "intervals":
                    interval_pruned.add((block.index, pos))
                elif pruned_by == "octagons":
                    octagon_pruned.add((block.index, pos))
                continue
            if const_slot is not None:
                facts = insts[const_slot].edge_facts(block, pos, edge, out_states[const_slot])
                if facts and facts is not INFEASIBLE:
                    result.edge_facts[(block.index, pos)] = facts
            if octagon_slot is not None and oct_refined is not None:
                out_env = out_states[octagon_slot]
                delta = {
                    key: bound
                    for key, bound in oct_refined.items()
                    if out_env.get(key) is None or bound < out_env[key]
                }
                if delta:
                    result.octagon_edge_facts[(block.index, pos)] = tuple(
                        sorted((a, b, c) for (a, b), c in delta.items())
                    )
    result.infeasible = frozenset(infeasible)
    result.interval_pruned = frozenset(interval_pruned)
    result.octagon_pruned = frozenset(octagon_pruned)
    return result


def facts_of(
    func: Optional[ast.FuncDef],
    cache: Optional[dict] = None,
    cfg: Optional[CFG] = None,
    domains: tuple[str, ...] = DEFAULT_DOMAINS,
) -> Optional[FunctionFacts]:
    """Memoized per-function product solve; ``None`` for branchless functions.

    The product API twin of ``consts_of`` — same cache discipline (the
    engine seeds ``cache`` from its keyed artifact), same branchless
    short-circuit (no branches means nothing to refine or prune and no loop
    to bound).
    """
    if func is None:
        return None
    if cache is not None and func.name in cache:
        return cache[func.name]
    result = solve_function_facts(func, cfg, domains) if has_branches(func) else None
    if cache is not None:
        cache[func.name] = result
    return result


def solve_program_facts(
    program: "Program",
    functions: Optional[list[str]] = None,
    domains: tuple[str, ...] = DEFAULT_DOMAINS,
) -> dict[str, Optional[FunctionFacts]]:
    """Solve every (or a subset of) function's product facts.

    Deterministic: results come out in the program's function-definition
    order regardless of how the engine shards the computation, so serial
    and ``--jobs N`` runs persist byte-identical artifacts.
    """
    results: dict[str, Optional[FunctionFacts]] = {}
    for name, func in program.functions_subset(functions):
        results[name] = facts_of(func, domains=domains)
    return results


#: Kept for callers that count product solves under the historical name.
FACTS_SOLVE_COUNTS: Counter[str] = CONST_SOLVE_COUNTS
