"""The interval abstract domain: ⊥ / [lo, hi] with ±∞ / ⊤ per variable.

This is the precision jump the ROADMAP names after the constant lattice: a
per-function *range* analysis over the same trackable names constant
propagation binds (non-address-taken scalar locals and parameters), run as a
reduced product with the constant component behind the
:mod:`repro.dataflow.domains` protocol.  Where constants can only say
``i = 3``, intervals say ``i ∈ [0, +∞)`` at a loop head — which is exactly
the lower-bound half of the proof that discharges the canonical
``for (i = 0; i < n; i++) buf->a[i]`` Deputy check.

Representation: an interval is a ``(lo, hi)`` pair of ints where ``None``
stands for the missing bound (−∞ / +∞).  An *environment* maps trackable
names to intervals; absence means ⊤ (any value), the whole-env ⊥ is the
solver's ``None``.  The lattice has infinite ascending chains
(``[0,0] ⊑ [0,1] ⊑ …``), so the fixpoint iteration **widens**: once a
block's input has been joined a few times, unstable bounds jump straight to
±∞ (:func:`widen_interval`), and a bounded narrowing sweep afterwards
recovers bounds the widening overshot (see ``solve_function_facts``).

Branch refinement is *relational in effect*: the true edge of ``x < n``
meets ``x`` with ``(-∞, hi(n) − 1]`` and ``n`` with ``[lo(x) + 1, +∞)``,
``x == y`` meets both sides with each other, and ``&&`` / ``||`` / ``!`` /
casts distribute exactly like the constant lattice's refinement.  A meet
that comes back empty marks the edge infeasible — interval-only pruning the
constant component cannot see (``if (i < 0)`` inside a ``for (i = 0; …)``).

Known imprecision, on purpose: division, shifts and mixed-sign products
return ⊤; no symbolic relations are *stored* (``x < n`` with both unknown
refines nothing here — the Deputy optimizer layers its own symbolic guard
facts on top); globals and address-taken locals stay untracked.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..minic import ast_nodes as ast
from ..minic.visitor import iter_child_nodes
from .consts import (
    _has_side_effects,
    _peel_casts,
    eval_const,
)
from .solver import INFEASIBLE

#: An interval: (lo, hi); ``None`` bounds are −∞ / +∞.  ⊤ is (None, None),
#: but environments never store ⊤ — absence means ⊤, mirroring the constant
#: environment convention, so empty dicts stay the common cheap case.
Interval = tuple[Optional[int], Optional[int]]

#: An interval environment: trackable name -> interval.
IntervalEnv = dict

#: Canonical (hashable, deterministic) form for artifact storage.
FrozenIntervalEnv = tuple[tuple[str, Interval], ...]

TOP: Interval = (None, None)


def freeze_interval_env(env: Mapping[str, Interval]) -> FrozenIntervalEnv:
    return tuple(sorted(env.items()))


def is_top(interval: Interval) -> bool:
    return interval[0] is None and interval[1] is None


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------


def join_interval(a: Interval, b: Interval) -> Interval:
    """The convex hull of two intervals."""
    lo = None if a[0] is None or b[0] is None else min(a[0], b[0])
    hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
    return (lo, hi)


def meet_interval(a: Interval, b: Interval) -> Optional[Interval]:
    """The intersection, or ``None`` when it is empty (contradiction)."""
    lo = b[0] if a[0] is None else (a[0] if b[0] is None else max(a[0], b[0]))
    hi = b[1] if a[1] is None else (a[1] if b[1] is None else min(a[1], b[1]))
    if lo is not None and hi is not None and lo > hi:
        return None
    return (lo, hi)


def widen_interval(old: Interval, new: Interval) -> Interval:
    """Classic interval widening: unstable bounds jump to ±∞."""
    lo = old[0] if (old[0] is not None and new[0] is not None and new[0] >= old[0]) else None
    hi = old[1] if (old[1] is not None and new[1] is not None and new[1] <= old[1]) else None
    return (lo, hi)


def join_interval_envs(a: IntervalEnv, b: IntervalEnv) -> IntervalEnv:
    """Env join: hull per name; a name absent on either side goes to ⊤."""
    if a == b:
        return a
    out: IntervalEnv = {}
    for name, interval in a.items():
        other = b.get(name)
        if other is None:
            continue
        joined = join_interval(interval, other)
        if not is_top(joined):
            out[name] = joined
    return out


def widen_interval_envs(old: IntervalEnv, new: IntervalEnv) -> IntervalEnv:
    """Env widening: per-name widening; unstable names drop to ⊤.

    Termination: each surviving name's bounds can only move to ``None``
    (never back), and the name set only shrinks — so every chain through
    this operator is finite regardless of the transfer function.
    """
    out: IntervalEnv = {}
    for name, interval in old.items():
        other = new.get(name)
        if other is None:
            continue
        widened = widen_interval(interval, other)
        if not is_top(widened):
            out[name] = widened
    return out


def narrow_interval_envs(old: IntervalEnv, new: IntervalEnv) -> IntervalEnv:
    """Env narrowing: refill only bounds the widening threw to ±∞.

    Standard interval narrowing — a finite bound established by widening is
    never *changed*, only missing (infinite) bounds are adopted from the
    recomputed state, so bounded rounds of decreasing iteration stay above
    the least fixpoint and terminate.
    """
    out: IntervalEnv = {}
    for name, interval in new.items():
        previous = old.get(name, TOP)
        lo = previous[0] if previous[0] is not None else interval[0]
        hi = previous[1] if previous[1] is not None else interval[1]
        if lo is not None and hi is not None and lo > hi:
            lo, hi = previous
        if lo is not None or hi is not None:
            out[name] = (lo, hi)
    return out


# ---------------------------------------------------------------------------
# Interval arithmetic and expression evaluation
# ---------------------------------------------------------------------------


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a[0] is None or b[0] is None else a[0] + b[0]
    hi = None if a[1] is None or b[1] is None else a[1] + b[1]
    return (lo, hi)


def _neg(a: Interval) -> Interval:
    return (None if a[1] is None else -a[1], None if a[0] is None else -a[0])


def _sub(a: Interval, b: Interval) -> Interval:
    return _add(a, _neg(b))


def _mul(a: Interval, b: Interval) -> Interval:
    if None in a or None in b:
        return TOP
    products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    return (min(products), max(products))


def _truth(a: Interval) -> Optional[bool]:
    """The boolean an interval decides, or ``None`` when it spans both."""
    if a[0] is not None and a[0] > 0:
        return True
    if a[1] is not None and a[1] < 0:
        return True
    if a == (0, 0):
        return False
    if a[0] is not None and a[1] is not None and not (a[0] <= 0 <= a[1]):
        return True
    return None


def _compare(op: str, a: Interval, b: Interval) -> Interval:
    """Evaluate a comparison over intervals: [0,0], [1,1], or [0,1]."""
    if op in (">", ">="):
        return _compare("<" if op == ">" else "<=", b, a)
    if op == "<":
        if a[1] is not None and b[0] is not None and a[1] < b[0]:
            return (1, 1)
        if a[0] is not None and b[1] is not None and a[0] >= b[1]:
            return (0, 0)
        return (0, 1)
    if op == "<=":
        if a[1] is not None and b[0] is not None and a[1] <= b[0]:
            return (1, 1)
        if a[0] is not None and b[1] is not None and a[0] > b[1]:
            return (0, 0)
        return (0, 1)
    if op == "==":
        if a[0] is not None and a == b and a[0] == a[1]:
            return (1, 1)
        if meet_interval(a, b) is None:
            return (0, 0)
        return (0, 1)
    if op == "!=":
        inner = _compare("==", a, b)
        if inner == (1, 1):
            return (0, 0)
        if inner == (0, 0):
            return (1, 1)
        return (0, 1)
    return TOP


def eval_interval(
    expr: Optional[ast.Expr],
    env: Mapping[str, Interval],
    consts: Mapping[str, int],
) -> Interval:
    """Bound ``expr`` under ``env``, consulting ``consts`` as the reduction.

    The constant component is the stronger fact where it exists — a binding
    ``x = 3`` is the singleton ``[3, 3]`` — so evaluation first tries the
    constant fold of the whole expression, then descends structurally with
    per-name interval lookups falling back to the constant binding.
    Anything side-effecting (assignment, ``++``, calls) and every operator
    without a sound interval rule returns ⊤.
    """
    if expr is None:
        return TOP
    folded = eval_const(expr, consts)
    if folded is not None:
        return (folded, folded)
    if isinstance(expr, ast.Ident):
        interval = env.get(expr.name, TOP)
        constant = consts.get(expr.name)
        if constant is not None:
            met = meet_interval(interval, (constant, constant))
            return met if met is not None else (constant, constant)
        return interval
    if isinstance(expr, ast.Cast):
        return eval_interval(expr.operand, env, consts)
    if isinstance(expr, ast.Unary):
        if expr.op == "-":
            return _neg(eval_interval(expr.operand, env, consts))
        if expr.op == "!":
            truth = _truth(eval_interval(expr.operand, env, consts))
            if truth is None:
                return (0, 1)
            return (0, 0) if truth else (1, 1)
        return TOP
    if isinstance(expr, ast.Binary):
        if expr.op in ("&&", "||"):
            left = _truth(eval_interval(expr.left, env, consts))
            right = _truth(eval_interval(expr.right, env, consts))
            if expr.op == "&&":
                if left is False or right is False:
                    return (0, 0)
                if left is True and right is True:
                    return (1, 1)
            else:
                if left is True or right is True:
                    return (1, 1)
                if left is False and right is False:
                    return (0, 0)
            return (0, 1)
        left = eval_interval(expr.left, env, consts)
        right = eval_interval(expr.right, env, consts)
        if expr.op == "+":
            return _add(left, right)
        if expr.op == "-":
            return _sub(left, right)
        if expr.op == "*":
            return _mul(left, right)
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return _compare(expr.op, left, right)
        return TOP
    if isinstance(expr, ast.Conditional):
        truth = _truth(eval_interval(expr.cond, env, consts))
        if truth is True:
            return eval_interval(expr.then, env, consts)
        if truth is False:
            return eval_interval(expr.otherwise, env, consts)
        return join_interval(
            eval_interval(expr.then, env, consts),
            eval_interval(expr.otherwise, env, consts),
        )
    if isinstance(expr, ast.Comma):
        if not expr.exprs or _has_side_effects(expr):
            return TOP
        return eval_interval(expr.exprs[-1], env, consts)
    return TOP


# ---------------------------------------------------------------------------
# The transfer function (assignment effects)
# ---------------------------------------------------------------------------


def _bind_interval(env: IntervalEnv, name: str, value: Interval) -> IntervalEnv:
    out = dict(env)
    if is_top(value):
        out.pop(name, None)
    else:
        out[name] = value
    return out


def transfer_interval_expr(
    env: IntervalEnv,
    expr: Optional[ast.Expr],
    safe: frozenset[str],
    consts: Mapping[str, int],
) -> IntervalEnv:
    """Apply the assignment effects of ``expr`` to ``env`` (copy-on-write).

    Mirrors :func:`repro.dataflow.consts.transfer_expr` structurally —
    including the evaluation-order soundness rule that an assignment under
    an undecided ``&&``/``||`` or ternary only *may* execute and therefore
    joins with the not-executed environment.  ``consts`` is the constant
    environment *before* ``expr`` (the reduction input for folding).
    """
    if expr is None:
        return env
    if isinstance(expr, ast.Assign):
        env = transfer_interval_expr(env, expr.value, safe, consts)
        if not isinstance(expr.target, ast.Ident):
            return transfer_interval_expr(env, expr.target, safe, consts)
        name = expr.target.name
        if name not in safe:
            return env
        if expr.op == "=":
            value = eval_interval(expr.value, env, consts)
        elif expr.op in ("+=", "-="):
            current = env.get(name, TOP)
            rhs = eval_interval(expr.value, env, consts)
            value = _add(current, rhs) if expr.op == "+=" else _sub(current, rhs)
        else:
            value = TOP
        return _bind_interval(env, name, value)
    if isinstance(expr, (ast.Postfix, ast.Unary)) and expr.op in ("++", "--"):
        if isinstance(expr.operand, ast.Ident):
            name = expr.operand.name
            if name not in safe:
                return env
            delta: Interval = (1, 1) if expr.op == "++" else (-1, -1)
            return _bind_interval(env, name, _add(env.get(name, TOP), delta))
        return transfer_interval_expr(env, expr.operand, safe, consts)
    if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
        env = transfer_interval_expr(env, expr.left, safe, consts)
        left = eval_const(expr.left, consts)
        if left is not None:
            runs = (left != 0) if expr.op == "&&" else (left == 0)
            if runs:
                return transfer_interval_expr(env, expr.right, safe, consts)
            return env
        taken = transfer_interval_expr(env, expr.right, safe, consts)
        return join_interval_envs(env, taken)
    if isinstance(expr, ast.Conditional):
        env = transfer_interval_expr(env, expr.cond, safe, consts)
        cond = eval_const(expr.cond, consts)
        if cond is not None:
            taken = expr.then if cond else expr.otherwise
            return transfer_interval_expr(env, taken, safe, consts)
        then_env = transfer_interval_expr(env, expr.then, safe, consts)
        else_env = transfer_interval_expr(env, expr.otherwise, safe, consts)
        return join_interval_envs(then_env, else_env)
    for child in iter_child_nodes(expr):
        if isinstance(child, ast.Expr):
            env = transfer_interval_expr(env, child, safe, consts)
    return env


# ---------------------------------------------------------------------------
# Branch-edge refinement
# ---------------------------------------------------------------------------


def interval_condition_facts(
    cond: ast.Expr,
    branch_true: bool,
    env: Mapping[str, Interval],
    consts: Mapping[str, int],
    safe: frozenset[str],
) -> "dict[str, Interval] | object":
    """Interval facts the ``branch_true`` edge of ``cond`` establishes.

    Returns a dict of name -> refined interval (to be *met* with the
    environment), or :data:`INFEASIBLE` when the condition's interval
    valuation contradicts the branch or a refinement meet comes back empty.
    Side-effecting conditions contribute nothing, same as the constant
    lattice.
    """
    if _has_side_effects(cond):
        return {}
    truth = _truth(eval_interval(cond, env, consts))
    if truth is not None and truth != branch_true:
        return INFEASIBLE
    facts: dict[str, Interval] = {}
    if _interval_bindings(cond, branch_true, env, consts, safe, facts):
        return INFEASIBLE
    return facts


def _refine_name(
    name: str,
    bound: Interval,
    env: Mapping[str, Interval],
    consts: Mapping[str, int],
    facts: dict[str, Interval],
) -> bool:
    """Meet ``name`` with ``bound``; True signals an empty (infeasible) meet."""
    current = facts.get(name, env.get(name, TOP))
    constant = consts.get(name)
    if constant is not None:
        narrowed = meet_interval(current, (constant, constant))
        if narrowed is None:
            return True
        current = narrowed
    met = meet_interval(current, bound)
    if met is None:
        return True
    if not is_top(met):
        facts[name] = met
    return False


def _interval_bindings(
    cond: ast.Expr,
    branch_true: bool,
    env: Mapping[str, Interval],
    consts: Mapping[str, int],
    safe: frozenset[str],
    facts: dict[str, Interval],
) -> bool:
    """Collect refinements into ``facts``; True means infeasible."""
    cond = _peel_casts(cond)
    if isinstance(cond, ast.Comma) and cond.exprs:
        return _interval_bindings(cond.exprs[-1], branch_true, env, consts, safe, facts)
    if isinstance(cond, ast.Unary) and cond.op == "!":
        return _interval_bindings(cond.operand, not branch_true, env, consts, safe, facts)
    if isinstance(cond, ast.Ident):
        if not branch_true and cond.name in safe:
            return _refine_name(cond.name, (0, 0), env, consts, facts)
        return False
    if not isinstance(cond, ast.Binary):
        return False
    if (cond.op == "&&" and branch_true) or (cond.op == "||" and not branch_true):
        if _interval_bindings(cond.left, branch_true, env, consts, safe, facts):
            return True
        return _interval_bindings(cond.right, branch_true, env, consts, safe, facts)
    op = cond.op
    if op not in ("<", "<=", ">", ">=", "==", "!="):
        return False
    if not branch_true:
        negated = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
        op = negated[op]
    left, right = _peel_casts(cond.left), _peel_casts(cond.right)
    left_iv = eval_interval(left, env, consts)
    right_iv = eval_interval(right, env, consts)
    if op == "!=":
        return False  # "anything but one value" is not convex
    if op == "==":
        for target, other in ((left, right_iv), (right, left_iv)):
            if isinstance(target, ast.Ident) and target.name in safe:
                if _refine_name(target.name, other, env, consts, facts):
                    return True
        return False
    if op in (">", ">="):
        left, right = right, left
        left_iv, right_iv = right_iv, left_iv
        op = "<" if op == ">" else "<="
    # Now  left OP right  with OP in {<, <=}.
    strict = 1 if op == "<" else 0
    if isinstance(left, ast.Ident) and left.name in safe:
        hi = None if right_iv[1] is None else right_iv[1] - strict
        if hi is not None and _refine_name(left.name, (None, hi), env, consts, facts):
            return True
    if isinstance(right, ast.Ident) and right.name in safe:
        lo = None if left_iv[0] is None else left_iv[0] + strict
        if lo is not None and _refine_name(right.name, (lo, None), env, consts, facts):
            return True
    return False


# ---------------------------------------------------------------------------
# The domain plug-in
# ---------------------------------------------------------------------------


class IntervalDomain:
    """The interval component of the reduced product (``name = "intervals"``).

    Implements the :class:`repro.dataflow.domains.AbstractDomain` protocol.
    The product snapshot handed to :meth:`transfer` / :meth:`refine_edge`
    carries the constant component's environment, which every fold consults
    first — the reduction that makes ``i = CONST + 1`` a singleton interval
    even when the interval env never tracked the operands.
    """

    name = "intervals"

    def __init__(self, func: ast.FuncDef, cfg, safe: frozenset[str]) -> None:
        self.safe = safe

    def bottom(self) -> None:
        return None  # ⊥ is the solver's None, never an environment

    def initial(self) -> IntervalEnv:
        return {}

    def _consts(self, product: Mapping[str, object]) -> Mapping[str, int]:
        return product.get("consts") or {}

    def transfer(self, element, state: IntervalEnv, product) -> IntervalEnv:
        consts = self._consts(product)
        env = transfer_interval_expr(state, element.expr, self.safe, consts)
        decl = element.decl
        if (
            decl is not None
            and decl.name in self.safe
            and decl.init is not None
            and not decl.init.is_list
            and decl.init.expr is element.expr
        ):
            env = _bind_interval(env, decl.name, eval_interval(element.expr, env, consts))
        return env

    def join(self, a: IntervalEnv, b: IntervalEnv) -> IntervalEnv:
        return join_interval_envs(a, b)

    def widen(self, old: IntervalEnv, new: IntervalEnv) -> IntervalEnv:
        return widen_interval_envs(old, new)

    def narrow(self, old: IntervalEnv, new: IntervalEnv) -> IntervalEnv:
        return narrow_interval_envs(old, new)

    def refine_edge(self, block, pos: int, edge, state: IntervalEnv, product):
        element = block.condition_element()
        if element is None or element.expr is None:
            return state
        if edge.label == "true":
            branch_true = True
        elif edge.label == "false":
            branch_true = False
        else:
            return state  # switch dispatch stays the constant component's job
        facts = interval_condition_facts(
            element.expr, branch_true, state, self._consts(product), self.safe
        )
        if facts is INFEASIBLE:
            return INFEASIBLE
        if not facts:
            return state
        merged = dict(state)
        merged.update(facts)
        return merged

    def freeze(self, state: IntervalEnv) -> FrozenIntervalEnv:
        return freeze_interval_env(state)
