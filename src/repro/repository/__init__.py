"""The shared annotation repository proposed in §3.2 of the paper."""

from .database import AnnotationDatabase, export_blocking_facts, export_deputy_facts
from .records import Fact, FactSet

__all__ = [
    "AnnotationDatabase", "export_blocking_facts", "export_deputy_facts",
    "Fact", "FactSet",
]
