"""Fact records for the shared annotation repository (§3.2).

The paper proposes a collaborative database of source-code facts — pointer
bounds, blocking behaviour, error codes — generated partly by hand and partly
by the tools, so that different research groups can reuse each other's
annotations.  A fact is a small, serialisable record with provenance.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Fact:
    """One piece of knowledge about a program entity."""

    subject_kind: str       # "function", "type", "field", "global"
    subject: str            # e.g. "kmalloc", "struct sk_buff.data"
    fact_kind: str          # e.g. "annotation", "blocking", "bounds", "callgraph"
    payload: str            # e.g. "count(len)", "blocking_if_wait"
    tool: str = "manual"    # which tool (or person) produced it
    confidence: float = 1.0
    program: str = "mini-kernel"

    def key(self) -> tuple[str, str, str]:
        """Facts with the same key describe the same property."""
        return (self.subject_kind, self.subject, self.fact_kind)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Fact":
        return cls(**data)


@dataclass
class FactSet:
    """A queryable collection of facts."""

    facts: list[Fact] = field(default_factory=list)

    def add(self, fact: Fact) -> None:
        self.facts.append(fact)

    def about(self, subject: str) -> list[Fact]:
        return [f for f in self.facts if f.subject == subject]

    def of_kind(self, fact_kind: str) -> list[Fact]:
        return [f for f in self.facts if f.fact_kind == fact_kind]

    def by_tool(self, tool: str) -> list[Fact]:
        return [f for f in self.facts if f.tool == tool]

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self):
        return iter(self.facts)
