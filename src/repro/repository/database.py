"""The shared annotation database: persistence, merging and queries."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .records import Fact, FactSet


@dataclass
class AnnotationDatabase:
    """A JSON-backed store of facts about one or more programs."""

    facts: FactSet = field(default_factory=FactSet)

    # -- mutation --------------------------------------------------------------

    def add(self, fact: Fact) -> None:
        self.facts.add(fact)

    def add_all(self, facts: list[Fact]) -> None:
        for fact in facts:
            self.add(fact)

    def merge(self, other: "AnnotationDatabase") -> int:
        """Merge another database, keeping the higher-confidence fact on conflict.

        Returns the number of facts imported (conflicts resolved in favour of
        the existing fact are not counted).
        """
        imported = 0
        by_key = {fact.key(): fact for fact in self.facts}
        for fact in other.facts:
            existing = by_key.get(fact.key())
            if existing is None:
                self.add(fact)
                by_key[fact.key()] = fact
                imported += 1
            elif fact.confidence > existing.confidence:
                self.facts.facts.remove(existing)
                self.add(fact)
                by_key[fact.key()] = fact
                imported += 1
        return imported

    # -- queries ---------------------------------------------------------------

    def about(self, subject: str) -> list[Fact]:
        return self.facts.about(subject)

    def blocking_functions(self) -> set[str]:
        return {fact.subject for fact in self.facts.of_kind("blocking")
                if fact.payload in ("blocking", "blocking_if_wait")}

    def annotations_for(self, subject: str) -> list[str]:
        return [fact.payload for fact in self.about(subject)
                if fact.fact_kind == "annotation"]

    def __len__(self) -> int:
        return len(self.facts)

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = [fact.to_dict() for fact in self.facts]
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "AnnotationDatabase":
        data = json.loads(Path(path).read_text())
        database = cls()
        database.add_all([Fact.from_dict(item) for item in data])
        return database


# ---------------------------------------------------------------------------
# Exporters: populate the database from the tools' results
# ---------------------------------------------------------------------------

def export_blocking_facts(info, graph, tool: str = "blockstop") -> list[Fact]:
    """Facts from a BlockStop run (the annotations it would emit)."""
    from ..blockstop.blocking import emit_annotations

    facts = []
    for name, label in emit_annotations(info, graph).items():
        facts.append(Fact(subject_kind="function", subject=name,
                          fact_kind="blocking", payload=label, tool=tool))
    return facts


def export_deputy_facts(program, tool: str = "deputy") -> list[Fact]:
    """Facts recording every source-level Deputy annotation in a program."""
    from ..minic import ast_nodes as ast
    from ..minic.ctypes import CFunc, CPointer
    from ..minic.visitor import walk

    facts: list[Fact] = []
    for unit in program.units:
        for node in walk(unit):
            if isinstance(node, ast.FuncDef):
                ftype = node.type.strip()
                if not isinstance(ftype, CFunc):
                    continue
                for param in ftype.params:
                    stripped = param.type.strip()
                    if isinstance(stripped, CPointer) and stripped.annotations:
                        facts.append(Fact(
                            subject_kind="function",
                            subject=f"{node.name}({param.name})",
                            fact_kind="annotation",
                            payload=str(stripped.annotations),
                            tool=tool))
    return facts
