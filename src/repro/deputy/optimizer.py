"""Redundant run-time check elimination and region constant facts.

Deputy inserts a run-time check wherever it cannot prove an access safe, but
straight-line code frequently checks the same pointer expression repeatedly
(``p->next`` three statements in a row).  The optimizer tracks which checks
have already been emitted in the current straight-line region and drops exact
duplicates, provided nothing that could invalidate them (a write to one of the
mentioned variables, or an arbitrary function call) has happened in between.

The same region cache also carries **constant facts** from the
condition-aware dataflow layer (:mod:`repro.dataflow.consts`): the known
integer values of the function's callee-immune names, updated at every
assignment and refined on branch arms (inside ``if (k == 2)`` the then-arm
knows ``k = 2``).  The static checker consults them through :meth:`fold` —
an index obligation whose index *and* bound both fold to constants with
``0 <= k < n`` is discharged statically instead of emitting
``__deputy_check_index(k, n)``.  Constant tracking stays active when the
elimination knob is off: it is checker precision, not an optimization, so
the A1 ablation (Table 1 with the optimizer disabled) measures elision
alone.

This is deliberately conservative — dropping a check is only sound when the
checked expression provably still has the checked property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow.consts import (
    _has_side_effects,
    condition_facts,
    eval_const,
    transfer_expr,
)
from ..dataflow.intervals import (
    eval_interval,
    interval_condition_facts,
    join_interval,
    transfer_interval_expr,
)
from ..dataflow.octagons import (
    add_octagon_constraint,
    close_octagon,
    entails_octagon,
    join_octagon_envs,
    oct_tighten,
)
from ..dataflow.solver import INFEASIBLE
from ..minic import ast_nodes as ast
from ..minic.pretty import render_expression
from ..minic.visitor import iter_child_nodes, walk


@dataclass
class CheckCache:
    """Tracks run-time checks already emitted in the current region.

    ``safe_names`` is the set of variables a function call provably cannot
    write: the enclosing function's non-address-taken scalar locals and
    parameters.  Globals and address-taken locals are *not* in the set — a
    callee can store to them — so a cached check mentioning one of them
    must not survive :meth:`invalidate_memory`.
    """

    enabled: bool = True
    safe_names: frozenset[str] | None = None
    _seen: dict[str, set[str]] = field(default_factory=dict)
    #: Keys whose check expression reads memory (a deref, subscript, or
    #: ``->``): their validity depends on the heap, never on names alone.
    _heap_reads: set[str] = field(default_factory=set)
    #: Known constant values of callee-immune names in this region.  Updated
    #: regardless of ``enabled`` (constant facts feed the *checker*, not the
    #: elision pass), and only ever for ``safe_names`` — storage no call or
    #: pointer store can write, so :meth:`invalidate_memory` leaves it alone.
    consts: dict[str, int] = field(default_factory=dict)
    #: Known value ranges of callee-immune names: name -> ``(lo, hi)`` with
    #: ``None`` bounds meaning ±∞ (:mod:`repro.dataflow.intervals`).  Seeded
    #: from the CFG solve's loop-head interval environments and refined on
    #: branch forks; like ``consts`` they feed checker precision, not the
    #: elision pass, and are memory-immune by construction.
    ranges: dict[str, tuple[int | None, int | None]] = field(default_factory=dict)
    #: Relational facts over *atoms*: a difference-bound environment
    #: (:mod:`repro.dataflow.octagons` machinery, variables keyed by the
    #: rendered core expression) recording ``±a ± b <= c`` for the region's
    #: tested comparisons (all six operators, with constant offsets folded
    #: into the bound — the true arm of ``i <= limit`` records
    #: ``i - limit <= 0``), the region's alias assignments (``m = n``), the
    #: CFG solve's loop-head octagon state, and everything closure derives
    #: from them.  This subsumes the old syntactic guard-key matching
    #: semantically: ``__deputy_check_index(i, n)`` discharges whenever the
    #: environment *entails* ``i - n <= -1``, whether the region tested
    #: ``i < n`` directly or ``i <= limit`` with ``limit == n - 1``.
    relations: dict = field(default_factory=dict)
    #: Per-atom invalidation metadata: atom -> (mentioned names, reads heap).
    #: A relation dies with any of its atoms: on a write to a mentioned
    #: name, and (for heap-reading or non-immune atoms) on any store/call.
    _rel_atoms: dict[str, tuple[frozenset[str], bool]] = field(
        default_factory=dict)

    def key_of(self, check: ast.Expr) -> str:
        return render_expression(check)

    def is_redundant(self, check: ast.Expr) -> bool:
        """Whether an identical check has already been emitted."""
        if not self.enabled:
            return False
        return self.key_of(check) in self._seen

    def remember(self, check: ast.Expr) -> None:
        if not self.enabled:
            return
        names = {node.name for node in walk(check) if isinstance(node, ast.Ident)}
        key = self.key_of(check)
        self._seen[key] = names
        if _reads_heap(check):
            self._heap_reads.add(key)

    def invalidate_name(self, name: str) -> None:
        """A variable was written: drop every cached check that mentions it."""
        self.consts.pop(name, None)
        self.ranges.pop(name, None)
        if self._rel_atoms:
            self._drop_atoms({atom for atom, (names, _)
                              in self._rel_atoms.items() if name in names})
        if not self.enabled or not self._seen:
            return
        stale = [key for key, names in self._seen.items() if name in names]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_memory(self) -> None:
        """A store through a pointer or an unknown call happened.

        Any check whose validity depends on the heap (pointer validity,
        nullterm scans) could be invalidated; we conservatively drop all
        cached checks that mention memory at all.  An index comparison
        survives only when it is heap-free (no deref, subscript, or ``->``
        inside the check expression) *and* every variable it mentions is
        provably immune to the store (``safe_names``): an index check over a
        global or an address-taken local can be invalidated by a callee
        write, so it is dropped like everything else.
        """
        if self._rel_atoms:
            immune = self.safe_names or frozenset()
            self._drop_atoms({atom for atom, (names, reads_heap)
                              in self._rel_atoms.items()
                              if reads_heap or not names <= immune})
        if not self.enabled or not self._seen:
            return
        safe = self.safe_names or frozenset()
        stale = [key for key, names in self._seen.items()
                 if not (key.startswith("__deputy_check_index")
                         and key not in self._heap_reads
                         and {name for name in names
                              if not name.startswith("__deputy_check")} <= safe)]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_all(self) -> None:
        self._seen.clear()
        self._heap_reads.clear()
        self.consts.clear()
        self.ranges.clear()
        self.relations.clear()
        self._rel_atoms.clear()

    def _drop_atoms(self, stale: set[str]) -> None:
        """Drop the relational rows touching any atom in ``stale``."""
        if not stale:
            return
        for atom in stale:
            del self._rel_atoms[atom]
        if self.relations:
            self.relations = {
                key: bound for key, bound in self.relations.items()
                if key[0][0] not in stale and key[1][0] not in stale
            }

    def fork(self, cond: ast.Expr | None = None,
             branch_true: bool = True) -> "CheckCache":
        """A copy for a branch arm (checks proven before the branch survive).

        With ``cond`` supplied the copy is branch-refined: the arm's cache
        learns the condition facts its edge establishes (``if (k == 2)``
        binds ``k = 2`` in the then-arm), mirroring the CFG layer's
        edge refinement inside the instrumenter's structural walk.
        """
        clone = CheckCache(enabled=self.enabled, safe_names=self.safe_names)
        clone._seen = {k: set(v) for k, v in self._seen.items()}
        clone._heap_reads = set(self._heap_reads)
        clone.consts = dict(self.consts)
        clone.ranges = dict(self.ranges)
        clone.relations = dict(self.relations)
        clone._rel_atoms = dict(self._rel_atoms)
        if cond is not None:
            safe = self.safe_names or frozenset()
            facts = condition_facts(cond, branch_true, clone.consts, safe)
            if facts is not INFEASIBLE:
                clone.consts.update(facts)
            interval_facts = interval_condition_facts(
                cond, branch_true, clone.ranges, clone.consts, safe)
            if interval_facts is not INFEASIBLE:
                clone.ranges.update(interval_facts)
            if not _has_side_effects(cond):
                clone._record_relations(cond, branch_true)
        return clone

    def joined(self, other: "CheckCache") -> "CheckCache":
        """The lattice join of two region caches (control-flow merge).

        Only cached checks present in both and constant bindings both agree
        on survive — facts valid on every incoming path.
        """
        clone = CheckCache(enabled=self.enabled, safe_names=self.safe_names)
        clone._seen = {key: set(names) for key, names in self._seen.items()
                       if key in other._seen}
        clone._heap_reads = ((self._heap_reads | other._heap_reads)
                             & set(clone._seen))
        clone.consts = {name: value for name, value in self.consts.items()
                        if other.consts.get(name) == value}
        clone.ranges = {
            name: joined
            for name, joined in ((name, join_interval(bounds,
                                                      other.ranges[name]))
                                 for name, bounds in self.ranges.items()
                                 if name in other.ranges)
            if joined != (None, None)}
        clone.relations = join_octagon_envs(self.relations, other.relations)
        clone._rel_atoms = {atom: meta for atom, meta
                            in self._rel_atoms.items()
                            if atom in other._rel_atoms}
        return clone

    def fork_switch(self, scrutinee: ast.Expr,
                    case_value: ast.Expr | None) -> "CheckCache":
        """A copy for one switch arm, refined with the case's dispatch fact."""
        if case_value is None:
            return self.fork()
        return self.fork(cond=ast.Binary(op="==", left=scrutinee,
                                         right=case_value),
                         branch_true=True)

    # -- constant facts ------------------------------------------------------

    def fold(self, expr: ast.Expr) -> int | None:
        """Fold ``expr`` under this region's constant facts."""
        return eval_const(expr, self.consts)

    def note_effects(self, expr: ast.Expr) -> None:
        """Learn/kill constant bindings from the assignments in ``expr``.

        Delegates to the dataflow layer's evaluation-order transfer
        (:func:`repro.dataflow.consts.transfer_expr`) — one shared
        semantics for both the CFG solve and this structural walk, including
        the soundness-critical rule that an assignment under ``&&``/``||``
        or a ternary arm only *may* execute and therefore joins instead of
        binding.

        The interval transfer runs first, under the *pre*-update constant
        bindings: ``i = i + 1`` must evaluate the right-hand ``i`` in the
        state before the assignment, not after.  Relational learning also
        runs under the pre-update constants: certain (not may-execute)
        ``m = n``-shaped assignments bind an equality between atoms —
        relations on the written names were already dropped by the caller's
        invalidation pass, so learning never relates a value to itself.
        """
        safe = self.safe_names or frozenset()
        pre_consts = self.consts
        self._note_relations(expr)
        self.ranges = dict(
            transfer_interval_expr(self.ranges, expr, safe, pre_consts))
        self.consts = dict(transfer_expr(pre_consts, expr, safe))

    def bind_decl(self, name: str, init: ast.Expr | None) -> None:
        """A declaration bound ``name``: learn its folded initializer.

        Besides the constant binding, a declaration with a linear
        initializer (``int limit = n - 1;``) binds the *relational*
        equality ``limit == n - 1`` — the derived-bound fact the loop-guard
        entailment later closes through.
        """
        if name in (self.safe_names or frozenset()):
            self._bind_const(name, None if init is None else self.fold(init))
            self._drop_atoms({atom for atom, (names, _)
                              in self._rel_atoms.items() if name in names})
            if init is not None:
                self._learn_equality(name, init)
        else:
            self.consts.pop(name, None)

    def _bind_const(self, name: str, value: int | None) -> None:
        if value is None:
            self.consts.pop(name, None)
        else:
            self.consts[name] = value

    # -- interval facts ------------------------------------------------------

    def seed_ranges(
        self,
        frozen_env: tuple[tuple[str, tuple[int | None, int | None]], ...],
    ) -> None:
        """Adopt a CFG solve's frozen interval environment (loop-head state).

        The structural walk cannot iterate a loop body to a fixpoint, so at
        loop heads it imports the widened/narrowed per-block state the CFG
        solver already computed — e.g. ``i: [0, +inf]`` at the head of
        ``for (i = 0; i < n; i++)``, the lower bound the index proof needs.
        """
        safe = self.safe_names or frozenset()
        for name, bounds in frozen_env:
            if name in safe:
                self.ranges[name] = bounds

    # -- relational facts ----------------------------------------------------

    def seed_relations(
        self,
        frozen_env: tuple[tuple[tuple[str, int], tuple[str, int], int], ...],
    ) -> None:
        """Adopt a CFG solve's frozen octagon environment (loop-head state).

        The relational twin of :meth:`seed_ranges`: loop bodies start from a
        fresh cache, so a bound derived *before* the loop (``limit = n - 1``)
        reaches the body only through the solver's loop-head state.  The
        solved octagon variables are trackable names, which map one-to-one
        onto name atoms here; frozen environments are already closed.
        """
        safe = self.safe_names or frozenset()
        for a, b, c in frozen_env:
            if a[0] not in safe or b[0] not in safe:
                continue
            for name in (a[0], b[0]):
                self._rel_atoms.setdefault(name, (frozenset((name,)), False))
            oct_tighten(self.relations, a, b, c)

    def prove_index(self, index: ast.Expr, bound: ast.Expr) -> str | None:
        """The proof (if any) that this region gives ``0 <= index < bound``.

        Returns ``"interval"`` when the index's numeric range alone beats a
        constant bound, ``"relational"`` when the strict upper bound follows
        from the difference-bound environment (directly tested, or entailed
        through closure — ``i <= limit`` with ``limit == n - 1`` proves
        ``i - n <= -1``), and ``None`` when the region proves nothing.  The
        lower bound always comes from the interval facts.
        """
        index = _strip_wrappers(index)
        bound = _strip_wrappers(bound)
        lo, hi = eval_interval(index, self.ranges, self.consts)
        if lo is None or lo < 0:
            return None
        bound_const = eval_const(bound, {})
        if bound_const is not None and hi is not None and hi < bound_const:
            return "interval"
        atom_index = self._atom_of(index)
        atom_bound = self._atom_of(bound)
        if atom_index is None or atom_bound is None:
            return None
        (ai, off_i, _), (ab, off_b, _) = atom_index, atom_bound
        if ai == ab:
            # Same value at the same program point: a[i] against i + k.
            return "relational" if off_i < off_b else None
        if entails_octagon(self.relations, 1, ai, -1, ab, off_b - off_i - 1):
            return "relational"
        return None

    def _atom_of(self, expr: ast.Expr) -> tuple[str, int, ast.Expr] | None:
        """``(atom, offset, core)`` for ``expr`` read as ``core + offset``.

        The atom is the rendered core expression after peeling wrappers and
        folding constant addends (under the region's constant facts — sound
        to bake in, since a relation over the remaining atoms is a fact
        about their *values* at recording time).  A fully-literal expression
        returns ``None``: numeric bounds are the interval path's job.
        """
        expr = _strip_wrappers(expr)
        offset = 0
        while isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            right = eval_const(expr.right, self.consts)
            if right is not None:
                offset += right if expr.op == "+" else -right
                expr = _strip_wrappers(expr.left)
                continue
            left = eval_const(expr.left, self.consts)
            if left is not None and expr.op == "+":
                offset += left
                expr = _strip_wrappers(expr.right)
                continue
            break
        if eval_const(expr, {}) is not None:
            return None
        return render_expression(expr), offset, expr

    def _note_atom(self, atom: str, core: ast.Expr) -> None:
        if atom not in self._rel_atoms:
            names = frozenset(node.name for node in walk(core)
                              if isinstance(node, ast.Ident))
            self._rel_atoms[atom] = (names, _reads_heap(core))

    def _learn_equality(self, name: str, value: ast.Expr) -> None:
        """A certain ``name = value``: bind the equality between their atoms."""
        if _has_side_effects(value):
            return
        parsed = self._atom_of(value)
        if parsed is None:
            return
        atom, offset, core = parsed
        names, _ = meta = (frozenset(node.name for node in walk(core)
                                     if isinstance(node, ast.Ident)),
                           _reads_heap(core))
        if name in names:
            return  # self-referential (i = i + 1): relations already dropped
        self._rel_atoms.setdefault(atom, meta)
        self._rel_atoms.setdefault(name, (frozenset((name,)), False))
        add_octagon_constraint(self.relations, 1, name, -1, atom, offset)
        add_octagon_constraint(self.relations, -1, name, 1, atom, -offset)

    def _note_relations(self, expr: ast.Expr | None) -> None:
        """Learn alias equalities from the *certain* assignments in ``expr``.

        Mirrors the transfer walk's evaluation-order structure, but learning
        only: an assignment under ``&&``/``||`` or a ternary arm only *may*
        execute, and its target's relations were already invalidated by the
        caller's ``written_names`` pass, so uncertain subtrees contribute
        nothing here.
        """
        if expr is None:
            return
        if isinstance(expr, ast.Assign):
            self._note_relations(expr.value)
            if not isinstance(expr.target, ast.Ident):
                self._note_relations(expr.target)
                return
            name = expr.target.name
            if name in (self.safe_names or frozenset()) and expr.op == "=":
                self._learn_equality(name, expr.value)
            return
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            self._note_relations(expr.left)
            return
        if isinstance(expr, ast.Conditional):
            self._note_relations(expr.cond)
            return
        for child in iter_child_nodes(expr):
            if isinstance(child, ast.Expr):
                self._note_relations(child)

    def _record_relations(self, cond: ast.Expr, branch_true: bool) -> None:
        """Record the difference bounds ``cond`` establishes on this edge.

        All six comparison operators contribute (possibly negated, or nested
        under ``&&`` on the true edge / ``||`` on the false edge): strict and
        non-strict inequalities add one constraint with the strictness
        folded into the bound, ``==`` adds both directions, ``!=`` adds
        nothing (non-convex).  The merged environment is closed so entailed
        bounds (``i <= limit`` plus ``limit == n - 1`` gives ``i < n``)
        become directly queryable.
        """
        pending: list[tuple[int, str, int, str, int]] = []
        self._comparison_atoms(cond, branch_true, pending)
        if not pending:
            return
        for s1, a1, s2, a2, c in pending:
            add_octagon_constraint(self.relations, s1, a1, s2, a2, c)
        closed = close_octagon(self.relations)
        if closed is not None:
            self.relations = closed

    def _comparison_atoms(
        self, cond: ast.Expr, branch_true: bool,
        pending: list[tuple[int, str, int, str, int]],
    ) -> None:
        cond = _strip_wrappers(cond)
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._comparison_atoms(cond.operand, not branch_true, pending)
            return
        if not isinstance(cond, ast.Binary):
            return
        if cond.op == "&&" and branch_true:
            self._comparison_atoms(cond.left, True, pending)
            self._comparison_atoms(cond.right, True, pending)
            return
        if cond.op == "||" and not branch_true:
            self._comparison_atoms(cond.left, False, pending)
            self._comparison_atoms(cond.right, False, pending)
            return
        if cond.op not in _NEGATED_COMPARISON:
            return
        op = cond.op if branch_true else _NEGATED_COMPARISON[cond.op]
        if op == "!=":
            return
        left = self._atom_of(cond.left)
        right = self._atom_of(cond.right)
        if left is None or right is None:
            return
        if op in (">", ">="):
            op = "<" if op == ">" else "<="
            left, right = right, left
        (a1, o1, core1), (a2, o2, core2) = left, right
        if a1 == a2:
            return
        self._note_atom(a1, core1)
        self._note_atom(a2, core2)
        if op == "==":
            pending.append((1, a1, -1, a2, o2 - o1))
            pending.append((-1, a1, 1, a2, o1 - o2))
        else:
            strict = 1 if op == "<" else 0
            pending.append((1, a1, -1, a2, o2 - o1 - strict))


def _strip_wrappers(expr: ast.Expr) -> ast.Expr:
    """Peel casts and comma sequences down to the value-producing core.

    Instrumentation wraps expressions in check sequences —
    ``(__deputy_check_ptr(buf, ...), buf->n)`` — whose value is the last
    operand; guard recording and the index proof must compare the *cores*
    so the loop guard's bound and the obligation's rebound count expression
    render identically.
    """
    while True:
        if isinstance(expr, ast.Cast):
            expr = expr.operand
        elif isinstance(expr, ast.Comma) and expr.exprs:
            expr = expr.exprs[-1]
        else:
            return expr


_NEGATED_COMPARISON = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                       "==": "!=", "!=": "=="}


def _reads_heap(check: ast.Expr) -> bool:
    """Whether the check expression reads through memory.

    A deref (``*p``), a subscript (``a[i]``), or an arrow member access
    (``p->n``) makes the check's *value* depend on the heap, so no amount of
    name-immunity can keep it valid across a store.  A dot access on a local
    struct stays name-governed (the base identifier is in the name set and
    escapes via ``&s...``), so it does not count.
    """
    for node in walk(check):
        if isinstance(node, ast.Index):
            return True
        if isinstance(node, ast.Member) and node.arrow:
            return True
        if isinstance(node, ast.Unary) and node.op == "*":
            return True
    return False


def written_names(expr: ast.Expr) -> list[str]:
    """Names of variables directly written by ``expr`` (for invalidation)."""
    names: list[str] = []
    for node in walk(expr):
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Ident):
            names.append(node.target.name)
        elif isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            operand = node.operand
            if isinstance(operand, ast.Ident):
                names.append(operand.name)
    return names


def writes_memory(expr: ast.Expr) -> bool:
    """Whether ``expr`` may store through a pointer or call a function."""
    for node in walk(expr):
        if isinstance(node, ast.Call):
            return True
        if isinstance(node, ast.Assign) and not isinstance(node.target, ast.Ident):
            return True
        if isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            if not isinstance(node.operand, ast.Ident):
                return True
    return False
