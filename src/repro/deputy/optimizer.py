"""Redundant run-time check elimination.

Deputy inserts a run-time check wherever it cannot prove an access safe, but
straight-line code frequently checks the same pointer expression repeatedly
(``p->next`` three statements in a row).  The optimizer tracks which checks
have already been emitted in the current straight-line region and drops exact
duplicates, provided nothing that could invalidate them (a write to one of the
mentioned variables, or an arbitrary function call) has happened in between.

This is deliberately conservative — dropping a check is only sound when the
checked expression provably still has the checked property — and it is the
knob behind the A1 ablation benchmark (Table 1 with the optimizer disabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..minic import ast_nodes as ast
from ..minic.pretty import render_expression
from ..minic.visitor import walk


@dataclass
class CheckCache:
    """Tracks run-time checks already emitted in the current region.

    ``safe_names`` is the set of variables a function call provably cannot
    write: the enclosing function's non-address-taken scalar locals and
    parameters.  Globals and address-taken locals are *not* in the set — a
    callee can store to them — so a cached check mentioning one of them
    must not survive :meth:`invalidate_memory`.
    """

    enabled: bool = True
    safe_names: frozenset[str] | None = None
    _seen: dict[str, set[str]] = field(default_factory=dict)
    #: Keys whose check expression reads memory (a deref, subscript, or
    #: ``->``): their validity depends on the heap, never on names alone.
    _heap_reads: set[str] = field(default_factory=set)

    def key_of(self, check: ast.Expr) -> str:
        return render_expression(check)

    def is_redundant(self, check: ast.Expr) -> bool:
        """Whether an identical check has already been emitted."""
        if not self.enabled:
            return False
        return self.key_of(check) in self._seen

    def remember(self, check: ast.Expr) -> None:
        if not self.enabled:
            return
        names = {node.name for node in walk(check) if isinstance(node, ast.Ident)}
        key = self.key_of(check)
        self._seen[key] = names
        if _reads_heap(check):
            self._heap_reads.add(key)

    def invalidate_name(self, name: str) -> None:
        """A variable was written: drop every cached check that mentions it."""
        if not self.enabled or not self._seen:
            return
        stale = [key for key, names in self._seen.items() if name in names]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_memory(self) -> None:
        """A store through a pointer or an unknown call happened.

        Any check whose validity depends on the heap (pointer validity,
        nullterm scans) could be invalidated; we conservatively drop all
        cached checks that mention memory at all.  An index comparison
        survives only when it is heap-free (no deref, subscript, or ``->``
        inside the check expression) *and* every variable it mentions is
        provably immune to the store (``safe_names``): an index check over a
        global or an address-taken local can be invalidated by a callee
        write, so it is dropped like everything else.
        """
        if not self.enabled or not self._seen:
            return
        safe = self.safe_names or frozenset()
        stale = [key for key, names in self._seen.items()
                 if not (key.startswith("__deputy_check_index")
                         and key not in self._heap_reads
                         and {name for name in names
                              if not name.startswith("__deputy_check")} <= safe)]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_all(self) -> None:
        self._seen.clear()
        self._heap_reads.clear()

    def fork(self) -> "CheckCache":
        """A copy for a branch arm (checks proven before the branch survive)."""
        clone = CheckCache(enabled=self.enabled, safe_names=self.safe_names)
        clone._seen = {k: set(v) for k, v in self._seen.items()}
        clone._heap_reads = set(self._heap_reads)
        return clone


def _reads_heap(check: ast.Expr) -> bool:
    """Whether the check expression reads through memory.

    A deref (``*p``), a subscript (``a[i]``), or an arrow member access
    (``p->n``) makes the check's *value* depend on the heap, so no amount of
    name-immunity can keep it valid across a store.  A dot access on a local
    struct stays name-governed (the base identifier is in the name set and
    escapes via ``&s...``), so it does not count.
    """
    for node in walk(check):
        if isinstance(node, ast.Index):
            return True
        if isinstance(node, ast.Member) and node.arrow:
            return True
        if isinstance(node, ast.Unary) and node.op == "*":
            return True
    return False


def written_names(expr: ast.Expr) -> list[str]:
    """Names of variables directly written by ``expr`` (for invalidation)."""
    names: list[str] = []
    for node in walk(expr):
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Ident):
            names.append(node.target.name)
        elif isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            operand = node.operand
            if isinstance(operand, ast.Ident):
                names.append(operand.name)
    return names


def writes_memory(expr: ast.Expr) -> bool:
    """Whether ``expr`` may store through a pointer or call a function."""
    for node in walk(expr):
        if isinstance(node, ast.Call):
            return True
        if isinstance(node, ast.Assign) and not isinstance(node.target, ast.Ident):
            return True
        if isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            if not isinstance(node.operand, ast.Ident):
                return True
    return False
