"""Redundant run-time check elimination and region constant facts.

Deputy inserts a run-time check wherever it cannot prove an access safe, but
straight-line code frequently checks the same pointer expression repeatedly
(``p->next`` three statements in a row).  The optimizer tracks which checks
have already been emitted in the current straight-line region and drops exact
duplicates, provided nothing that could invalidate them (a write to one of the
mentioned variables, or an arbitrary function call) has happened in between.

The same region cache also carries **constant facts** from the
condition-aware dataflow layer (:mod:`repro.dataflow.consts`): the known
integer values of the function's callee-immune names, updated at every
assignment and refined on branch arms (inside ``if (k == 2)`` the then-arm
knows ``k = 2``).  The static checker consults them through :meth:`fold` —
an index obligation whose index *and* bound both fold to constants with
``0 <= k < n`` is discharged statically instead of emitting
``__deputy_check_index(k, n)``.  Constant tracking stays active when the
elimination knob is off: it is checker precision, not an optimization, so
the A1 ablation (Table 1 with the optimizer disabled) measures elision
alone.

This is deliberately conservative — dropping a check is only sound when the
checked expression provably still has the checked property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow.consts import (
    _has_side_effects,
    condition_facts,
    eval_const,
    transfer_expr,
)
from ..dataflow.intervals import (
    eval_interval,
    interval_condition_facts,
    join_interval,
    transfer_interval_expr,
)
from ..dataflow.solver import INFEASIBLE
from ..minic import ast_nodes as ast
from ..minic.pretty import render_expression
from ..minic.visitor import walk


@dataclass
class CheckCache:
    """Tracks run-time checks already emitted in the current region.

    ``safe_names`` is the set of variables a function call provably cannot
    write: the enclosing function's non-address-taken scalar locals and
    parameters.  Globals and address-taken locals are *not* in the set — a
    callee can store to them — so a cached check mentioning one of them
    must not survive :meth:`invalidate_memory`.
    """

    enabled: bool = True
    safe_names: frozenset[str] | None = None
    _seen: dict[str, set[str]] = field(default_factory=dict)
    #: Keys whose check expression reads memory (a deref, subscript, or
    #: ``->``): their validity depends on the heap, never on names alone.
    _heap_reads: set[str] = field(default_factory=set)
    #: Known constant values of callee-immune names in this region.  Updated
    #: regardless of ``enabled`` (constant facts feed the *checker*, not the
    #: elision pass), and only ever for ``safe_names`` — storage no call or
    #: pointer store can write, so :meth:`invalidate_memory` leaves it alone.
    consts: dict[str, int] = field(default_factory=dict)
    #: Known value ranges of callee-immune names: name -> ``(lo, hi)`` with
    #: ``None`` bounds meaning ±∞ (:mod:`repro.dataflow.intervals`).  Seeded
    #: from the CFG solve's loop-head interval environments and refined on
    #: branch forks; like ``consts`` they feed checker precision, not the
    #: elision pass, and are memory-immune by construction.
    ranges: dict[str, tuple[int | None, int | None]] = field(default_factory=dict)
    #: Symbolic strict upper bounds the region has *tested*: the true arm of
    #: ``i < n`` records ``("i", "n") -> (names in the bound, bound reads
    #: heap)``.  Unlike ``ranges`` these compare renderings, so they
    #: discharge ``__deputy_check_index(i, n)`` even when neither side has a
    #: numeric bound — the loop-guard shape the interval lattice alone
    #: cannot close.  A guard dies with any write to the index, any write to
    #: a bound name, and (for heap-reading or non-immune bounds) any store
    #: or call.
    guards: dict[tuple[str, str], tuple[frozenset[str], bool]] = field(
        default_factory=dict)

    def key_of(self, check: ast.Expr) -> str:
        return render_expression(check)

    def is_redundant(self, check: ast.Expr) -> bool:
        """Whether an identical check has already been emitted."""
        if not self.enabled:
            return False
        return self.key_of(check) in self._seen

    def remember(self, check: ast.Expr) -> None:
        if not self.enabled:
            return
        names = {node.name for node in walk(check) if isinstance(node, ast.Ident)}
        key = self.key_of(check)
        self._seen[key] = names
        if _reads_heap(check):
            self._heap_reads.add(key)

    def invalidate_name(self, name: str) -> None:
        """A variable was written: drop every cached check that mentions it."""
        self.consts.pop(name, None)
        self.ranges.pop(name, None)
        if self.guards:
            stale_guards = [key for key, (names, _) in self.guards.items()
                            if key[0] == name or name in names]
            for key in stale_guards:
                del self.guards[key]
        if not self.enabled or not self._seen:
            return
        stale = [key for key, names in self._seen.items() if name in names]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_memory(self) -> None:
        """A store through a pointer or an unknown call happened.

        Any check whose validity depends on the heap (pointer validity,
        nullterm scans) could be invalidated; we conservatively drop all
        cached checks that mention memory at all.  An index comparison
        survives only when it is heap-free (no deref, subscript, or ``->``
        inside the check expression) *and* every variable it mentions is
        provably immune to the store (``safe_names``): an index check over a
        global or an address-taken local can be invalidated by a callee
        write, so it is dropped like everything else.
        """
        if self.guards:
            guard_safe = self.safe_names or frozenset()
            stale_guards = [key for key, (names, reads_heap)
                            in self.guards.items()
                            if reads_heap or not names <= guard_safe]
            for key in stale_guards:
                del self.guards[key]
        if not self.enabled or not self._seen:
            return
        safe = self.safe_names or frozenset()
        stale = [key for key, names in self._seen.items()
                 if not (key.startswith("__deputy_check_index")
                         and key not in self._heap_reads
                         and {name for name in names
                              if not name.startswith("__deputy_check")} <= safe)]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_all(self) -> None:
        self._seen.clear()
        self._heap_reads.clear()
        self.consts.clear()
        self.ranges.clear()
        self.guards.clear()

    def fork(self, cond: ast.Expr | None = None,
             branch_true: bool = True) -> "CheckCache":
        """A copy for a branch arm (checks proven before the branch survive).

        With ``cond`` supplied the copy is branch-refined: the arm's cache
        learns the condition facts its edge establishes (``if (k == 2)``
        binds ``k = 2`` in the then-arm), mirroring the CFG layer's
        edge refinement inside the instrumenter's structural walk.
        """
        clone = CheckCache(enabled=self.enabled, safe_names=self.safe_names)
        clone._seen = {k: set(v) for k, v in self._seen.items()}
        clone._heap_reads = set(self._heap_reads)
        clone.consts = dict(self.consts)
        clone.ranges = dict(self.ranges)
        clone.guards = dict(self.guards)
        if cond is not None:
            safe = self.safe_names or frozenset()
            facts = condition_facts(cond, branch_true, clone.consts, safe)
            if facts is not INFEASIBLE:
                clone.consts.update(facts)
            interval_facts = interval_condition_facts(
                cond, branch_true, clone.ranges, clone.consts, safe)
            if interval_facts is not INFEASIBLE:
                clone.ranges.update(interval_facts)
            if not _has_side_effects(cond):
                _record_guards(cond, branch_true, clone.guards, safe)
        return clone

    def joined(self, other: "CheckCache") -> "CheckCache":
        """The lattice join of two region caches (control-flow merge).

        Only cached checks present in both and constant bindings both agree
        on survive — facts valid on every incoming path.
        """
        clone = CheckCache(enabled=self.enabled, safe_names=self.safe_names)
        clone._seen = {key: set(names) for key, names in self._seen.items()
                       if key in other._seen}
        clone._heap_reads = ((self._heap_reads | other._heap_reads)
                             & set(clone._seen))
        clone.consts = {name: value for name, value in self.consts.items()
                        if other.consts.get(name) == value}
        clone.ranges = {
            name: joined
            for name, joined in ((name, join_interval(bounds,
                                                      other.ranges[name]))
                                 for name, bounds in self.ranges.items()
                                 if name in other.ranges)
            if joined != (None, None)}
        clone.guards = {key: value for key, value in self.guards.items()
                        if key in other.guards}
        return clone

    def fork_switch(self, scrutinee: ast.Expr,
                    case_value: ast.Expr | None) -> "CheckCache":
        """A copy for one switch arm, refined with the case's dispatch fact."""
        if case_value is None:
            return self.fork()
        return self.fork(cond=ast.Binary(op="==", left=scrutinee,
                                         right=case_value),
                         branch_true=True)

    # -- constant facts ------------------------------------------------------

    def fold(self, expr: ast.Expr) -> int | None:
        """Fold ``expr`` under this region's constant facts."""
        return eval_const(expr, self.consts)

    def note_effects(self, expr: ast.Expr) -> None:
        """Learn/kill constant bindings from the assignments in ``expr``.

        Delegates to the dataflow layer's evaluation-order transfer
        (:func:`repro.dataflow.consts.transfer_expr`) — one shared
        semantics for both the CFG solve and this structural walk, including
        the soundness-critical rule that an assignment under ``&&``/``||``
        or a ternary arm only *may* execute and therefore joins instead of
        binding.

        The interval transfer runs first, under the *pre*-update constant
        bindings: ``i = i + 1`` must evaluate the right-hand ``i`` in the
        state before the assignment, not after.
        """
        safe = self.safe_names or frozenset()
        pre_consts = self.consts
        self.ranges = dict(
            transfer_interval_expr(self.ranges, expr, safe, pre_consts))
        self.consts = dict(transfer_expr(pre_consts, expr, safe))

    def bind_decl(self, name: str, init: ast.Expr | None) -> None:
        """A declaration bound ``name``: learn its folded initializer."""
        if name in (self.safe_names or frozenset()):
            self._bind_const(name, None if init is None else self.fold(init))
        else:
            self.consts.pop(name, None)

    def _bind_const(self, name: str, value: int | None) -> None:
        if value is None:
            self.consts.pop(name, None)
        else:
            self.consts[name] = value

    # -- interval facts ------------------------------------------------------

    def seed_ranges(
        self,
        frozen_env: tuple[tuple[str, tuple[int | None, int | None]], ...],
    ) -> None:
        """Adopt a CFG solve's frozen interval environment (loop-head state).

        The structural walk cannot iterate a loop body to a fixpoint, so at
        loop heads it imports the widened/narrowed per-block state the CFG
        solver already computed — e.g. ``i: [0, +inf]`` at the head of
        ``for (i = 0; i < n; i++)``, the lower bound the index proof needs.
        """
        safe = self.safe_names or frozenset()
        for name, bounds in frozen_env:
            if name in safe:
                self.ranges[name] = bounds

    def prove_index(self, index: ast.Expr, bound: ast.Expr) -> bool:
        """Whether this region proves ``0 <= index < bound``.

        The lower bound always comes from the interval facts.  The strict
        upper bound comes from either a recorded symbolic guard (the true
        arm of ``i < n`` covers ``__deputy_check_index(i, n)`` by rendering
        equality) or, when the bound folds to a literal constant, from the
        index's numeric interval alone.
        """
        index = _strip_wrappers(index)
        bound = _strip_wrappers(bound)
        interval = eval_interval(index, self.ranges, self.consts)
        lo, hi = interval
        if lo is None or lo < 0:
            return False
        key = (render_expression(index), render_expression(bound))
        if key in self.guards:
            return True
        bound_const = eval_const(bound, {})
        return (bound_const is not None and hi is not None
                and hi < bound_const)


def _strip_wrappers(expr: ast.Expr) -> ast.Expr:
    """Peel casts and comma sequences down to the value-producing core.

    Instrumentation wraps expressions in check sequences —
    ``(__deputy_check_ptr(buf, ...), buf->n)`` — whose value is the last
    operand; guard recording and the index proof must compare the *cores*
    so the loop guard's bound and the obligation's rebound count expression
    render identically.
    """
    while True:
        if isinstance(expr, ast.Cast):
            expr = expr.expr
        elif isinstance(expr, ast.Comma) and expr.exprs:
            expr = expr.exprs[-1]
        else:
            return expr


_NEGATED_COMPARISON = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                       "==": "!=", "!=": "=="}


def _record_guards(cond: ast.Expr, branch_true: bool,
                   guards: dict[tuple[str, str], tuple[frozenset[str], bool]],
                   safe: frozenset[str]) -> None:
    """Record the strict upper bounds ``cond`` establishes on this edge.

    Only the shapes that later match an index obligation by rendering are
    kept: a strict ``index < bound`` (possibly spelled ``bound > index``,
    negated, or nested under ``&&`` on the true edge / ``||`` on the false
    edge) with a callee-immune identifier index.  Non-strict comparisons
    (``i <= n``) establish no strict bound and are deliberately skipped —
    that asymmetry is what keeps the off-by-one twin's check alive.
    """
    cond = _strip_wrappers(cond)
    if isinstance(cond, ast.Unary) and cond.op == "!":
        _record_guards(cond.operand, not branch_true, guards, safe)
        return
    if isinstance(cond, ast.Binary):
        if cond.op == "&&" and branch_true:
            _record_guards(cond.left, True, guards, safe)
            _record_guards(cond.right, True, guards, safe)
            return
        if cond.op == "||" and not branch_true:
            _record_guards(cond.left, False, guards, safe)
            _record_guards(cond.right, False, guards, safe)
            return
        if cond.op not in _NEGATED_COMPARISON:
            return
        op = cond.op if branch_true else _NEGATED_COMPARISON[cond.op]
        left = _strip_wrappers(cond.left)
        right = _strip_wrappers(cond.right)
        if op == ">":
            op, left, right = "<", right, left
        if op != "<" or not isinstance(left, ast.Ident) or left.name not in safe:
            return
        names = frozenset(node.name for node in walk(right)
                          if isinstance(node, ast.Ident))
        guards[(left.name, render_expression(right))] = (names,
                                                         _reads_heap(right))


def _reads_heap(check: ast.Expr) -> bool:
    """Whether the check expression reads through memory.

    A deref (``*p``), a subscript (``a[i]``), or an arrow member access
    (``p->n``) makes the check's *value* depend on the heap, so no amount of
    name-immunity can keep it valid across a store.  A dot access on a local
    struct stays name-governed (the base identifier is in the name set and
    escapes via ``&s...``), so it does not count.
    """
    for node in walk(check):
        if isinstance(node, ast.Index):
            return True
        if isinstance(node, ast.Member) and node.arrow:
            return True
        if isinstance(node, ast.Unary) and node.op == "*":
            return True
    return False


def written_names(expr: ast.Expr) -> list[str]:
    """Names of variables directly written by ``expr`` (for invalidation)."""
    names: list[str] = []
    for node in walk(expr):
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Ident):
            names.append(node.target.name)
        elif isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            operand = node.operand
            if isinstance(operand, ast.Ident):
                names.append(operand.name)
    return names


def writes_memory(expr: ast.Expr) -> bool:
    """Whether ``expr`` may store through a pointer or call a function."""
    for node in walk(expr):
        if isinstance(node, ast.Call):
            return True
        if isinstance(node, ast.Assign) and not isinstance(node.target, ast.Ident):
            return True
        if isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            if not isinstance(node.operand, ast.Ident):
                return True
    return False
