"""Redundant run-time check elimination and region constant facts.

Deputy inserts a run-time check wherever it cannot prove an access safe, but
straight-line code frequently checks the same pointer expression repeatedly
(``p->next`` three statements in a row).  The optimizer tracks which checks
have already been emitted in the current straight-line region and drops exact
duplicates, provided nothing that could invalidate them (a write to one of the
mentioned variables, or an arbitrary function call) has happened in between.

The same region cache also carries **constant facts** from the
condition-aware dataflow layer (:mod:`repro.dataflow.consts`): the known
integer values of the function's callee-immune names, updated at every
assignment and refined on branch arms (inside ``if (k == 2)`` the then-arm
knows ``k = 2``).  The static checker consults them through :meth:`fold` —
an index obligation whose index *and* bound both fold to constants with
``0 <= k < n`` is discharged statically instead of emitting
``__deputy_check_index(k, n)``.  Constant tracking stays active when the
elimination knob is off: it is checker precision, not an optimization, so
the A1 ablation (Table 1 with the optimizer disabled) measures elision
alone.

This is deliberately conservative — dropping a check is only sound when the
checked expression provably still has the checked property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow.consts import condition_facts, eval_const, transfer_expr
from ..dataflow.solver import INFEASIBLE
from ..minic import ast_nodes as ast
from ..minic.pretty import render_expression
from ..minic.visitor import walk


@dataclass
class CheckCache:
    """Tracks run-time checks already emitted in the current region.

    ``safe_names`` is the set of variables a function call provably cannot
    write: the enclosing function's non-address-taken scalar locals and
    parameters.  Globals and address-taken locals are *not* in the set — a
    callee can store to them — so a cached check mentioning one of them
    must not survive :meth:`invalidate_memory`.
    """

    enabled: bool = True
    safe_names: frozenset[str] | None = None
    _seen: dict[str, set[str]] = field(default_factory=dict)
    #: Keys whose check expression reads memory (a deref, subscript, or
    #: ``->``): their validity depends on the heap, never on names alone.
    _heap_reads: set[str] = field(default_factory=set)
    #: Known constant values of callee-immune names in this region.  Updated
    #: regardless of ``enabled`` (constant facts feed the *checker*, not the
    #: elision pass), and only ever for ``safe_names`` — storage no call or
    #: pointer store can write, so :meth:`invalidate_memory` leaves it alone.
    consts: dict[str, int] = field(default_factory=dict)

    def key_of(self, check: ast.Expr) -> str:
        return render_expression(check)

    def is_redundant(self, check: ast.Expr) -> bool:
        """Whether an identical check has already been emitted."""
        if not self.enabled:
            return False
        return self.key_of(check) in self._seen

    def remember(self, check: ast.Expr) -> None:
        if not self.enabled:
            return
        names = {node.name for node in walk(check) if isinstance(node, ast.Ident)}
        key = self.key_of(check)
        self._seen[key] = names
        if _reads_heap(check):
            self._heap_reads.add(key)

    def invalidate_name(self, name: str) -> None:
        """A variable was written: drop every cached check that mentions it."""
        self.consts.pop(name, None)
        if not self.enabled or not self._seen:
            return
        stale = [key for key, names in self._seen.items() if name in names]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_memory(self) -> None:
        """A store through a pointer or an unknown call happened.

        Any check whose validity depends on the heap (pointer validity,
        nullterm scans) could be invalidated; we conservatively drop all
        cached checks that mention memory at all.  An index comparison
        survives only when it is heap-free (no deref, subscript, or ``->``
        inside the check expression) *and* every variable it mentions is
        provably immune to the store (``safe_names``): an index check over a
        global or an address-taken local can be invalidated by a callee
        write, so it is dropped like everything else.
        """
        if not self.enabled or not self._seen:
            return
        safe = self.safe_names or frozenset()
        stale = [key for key, names in self._seen.items()
                 if not (key.startswith("__deputy_check_index")
                         and key not in self._heap_reads
                         and {name for name in names
                              if not name.startswith("__deputy_check")} <= safe)]
        for key in stale:
            del self._seen[key]
            self._heap_reads.discard(key)

    def invalidate_all(self) -> None:
        self._seen.clear()
        self._heap_reads.clear()
        self.consts.clear()

    def fork(self, cond: ast.Expr | None = None,
             branch_true: bool = True) -> "CheckCache":
        """A copy for a branch arm (checks proven before the branch survive).

        With ``cond`` supplied the copy is branch-refined: the arm's cache
        learns the condition facts its edge establishes (``if (k == 2)``
        binds ``k = 2`` in the then-arm), mirroring the CFG layer's
        edge refinement inside the instrumenter's structural walk.
        """
        clone = CheckCache(enabled=self.enabled, safe_names=self.safe_names)
        clone._seen = {k: set(v) for k, v in self._seen.items()}
        clone._heap_reads = set(self._heap_reads)
        clone.consts = dict(self.consts)
        if cond is not None:
            facts = condition_facts(cond, branch_true, clone.consts,
                                    self.safe_names or frozenset())
            if facts is not INFEASIBLE:
                clone.consts.update(facts)
        return clone

    def joined(self, other: "CheckCache") -> "CheckCache":
        """The lattice join of two region caches (control-flow merge).

        Only cached checks present in both and constant bindings both agree
        on survive — facts valid on every incoming path.
        """
        clone = CheckCache(enabled=self.enabled, safe_names=self.safe_names)
        clone._seen = {key: set(names) for key, names in self._seen.items()
                       if key in other._seen}
        clone._heap_reads = ((self._heap_reads | other._heap_reads)
                             & set(clone._seen))
        clone.consts = {name: value for name, value in self.consts.items()
                        if other.consts.get(name) == value}
        return clone

    def fork_switch(self, scrutinee: ast.Expr,
                    case_value: ast.Expr | None) -> "CheckCache":
        """A copy for one switch arm, refined with the case's dispatch fact."""
        if case_value is None:
            return self.fork()
        return self.fork(cond=ast.Binary(op="==", left=scrutinee,
                                         right=case_value),
                         branch_true=True)

    # -- constant facts ------------------------------------------------------

    def fold(self, expr: ast.Expr) -> int | None:
        """Fold ``expr`` under this region's constant facts."""
        return eval_const(expr, self.consts)

    def note_effects(self, expr: ast.Expr) -> None:
        """Learn/kill constant bindings from the assignments in ``expr``.

        Delegates to the dataflow layer's evaluation-order transfer
        (:func:`repro.dataflow.consts.transfer_expr`) — one shared
        semantics for both the CFG solve and this structural walk, including
        the soundness-critical rule that an assignment under ``&&``/``||``
        or a ternary arm only *may* execute and therefore joins instead of
        binding.
        """
        self.consts = dict(
            transfer_expr(self.consts, expr, self.safe_names or frozenset()))

    def bind_decl(self, name: str, init: ast.Expr | None) -> None:
        """A declaration bound ``name``: learn its folded initializer."""
        if name in (self.safe_names or frozenset()):
            self._bind_const(name, None if init is None else self.fold(init))
        else:
            self.consts.pop(name, None)

    def _bind_const(self, name: str, value: int | None) -> None:
        if value is None:
            self.consts.pop(name, None)
        else:
            self.consts[name] = value


def _reads_heap(check: ast.Expr) -> bool:
    """Whether the check expression reads through memory.

    A deref (``*p``), a subscript (``a[i]``), or an arrow member access
    (``p->n``) makes the check's *value* depend on the heap, so no amount of
    name-immunity can keep it valid across a store.  A dot access on a local
    struct stays name-governed (the base identifier is in the name set and
    escapes via ``&s...``), so it does not count.
    """
    for node in walk(check):
        if isinstance(node, ast.Index):
            return True
        if isinstance(node, ast.Member) and node.arrow:
            return True
        if isinstance(node, ast.Unary) and node.op == "*":
            return True
    return False


def written_names(expr: ast.Expr) -> list[str]:
    """Names of variables directly written by ``expr`` (for invalidation)."""
    names: list[str] = []
    for node in walk(expr):
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Ident):
            names.append(node.target.name)
        elif isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            operand = node.operand
            if isinstance(operand, ast.Ident):
                names.append(operand.name)
    return names


def writes_memory(expr: ast.Expr) -> bool:
    """Whether ``expr`` may store through a pointer or call a function."""
    for node in walk(expr):
        if isinstance(node, ast.Call):
            return True
        if isinstance(node, ast.Assign) and not isinstance(node.target, ast.Ident):
            return True
        if isinstance(node, (ast.Postfix, ast.Unary)) and getattr(node, "op", "") in ("++", "--"):
            if not isinstance(node.operand, ast.Ident):
                return True
    return False
