"""Conversion reports: the numbers §2.1 of the paper tracks.

The paper summarises the Deputy conversion of the kernel with a handful of
statistics: how many lines of code were converted, how many lines carry
annotations (~0.6%), how many lines are trusted (<0.8%), and how the run-time
checks break down.  This module computes the same census for a MiniC program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.attrs import AnnotationKind, AnnotationSet
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.ctypes import CArray, CFunc, CPointer, CStruct, CType
from ..minic.visitor import walk
from .instrument import InstrumentationResult


@dataclass
class ConversionReport:
    """Deputy conversion statistics for one program."""

    total_lines: int = 0
    annotated_lines: int = 0
    trusted_lines: int = 0
    annotation_count: int = 0
    trusted_functions: int = 0
    trusted_blocks: int = 0
    trusted_casts: int = 0
    checks_inserted: int = 0
    checks_static: int = 0
    checks_interval: int = 0
    checks_relational: int = 0
    checks_elided: int = 0
    check_errors: int = 0
    functions_converted: int = 0
    by_annotation_kind: dict[str, int] = field(default_factory=dict)

    @property
    def annotated_fraction(self) -> float:
        return self.annotated_lines / self.total_lines if self.total_lines else 0.0

    @property
    def trusted_fraction(self) -> float:
        return self.trusted_lines / self.total_lines if self.total_lines else 0.0

    @property
    def static_fraction(self) -> float:
        """Fraction of obligations discharged without a run-time check."""
        total = self.checks_inserted + self.checks_static + self.checks_elided
        if total == 0:
            return 1.0
        return (self.checks_static + self.checks_elided) / total

    def rows(self) -> list[tuple[str, str]]:
        """Rows for the harness's textual report."""
        return [
            ("lines converted", str(self.total_lines)),
            ("annotated lines", f"{self.annotated_lines} ({self.annotated_fraction:.2%})"),
            ("trusted lines", f"{self.trusted_lines} ({self.trusted_fraction:.2%})"),
            ("annotations", str(self.annotation_count)),
            ("functions converted", str(self.functions_converted)),
            ("trusted functions", str(self.trusted_functions)),
            ("trusted blocks", str(self.trusted_blocks)),
            ("trusted casts", str(self.trusted_casts)),
            ("run-time checks inserted", str(self.checks_inserted)),
            ("obligations proven statically", str(self.checks_static)),
            ("  of which interval-bounded", str(self.checks_interval)),
            ("  of which relational-bounded", str(self.checks_relational)),
            ("redundant checks elided", str(self.checks_elided)),
            ("static errors outstanding", str(self.check_errors)),
        ]

    def __str__(self) -> str:
        return "\n".join(f"{key:>32}: {value}" for key, value in self.rows())


def _annotation_sets_of_type(ctype: CType, seen: set[int]) -> list[AnnotationSet]:
    if id(ctype) in seen:
        return []
    seen.add(id(ctype))
    sets: list[AnnotationSet] = []
    if isinstance(ctype, CPointer):
        if ctype.annotations:
            sets.append(ctype.annotations)
        sets.extend(_annotation_sets_of_type(ctype.target, seen))
    elif isinstance(ctype, CArray):
        sets.extend(_annotation_sets_of_type(ctype.element, seen))
    elif isinstance(ctype, CFunc):
        if ctype.annotations:
            sets.append(ctype.annotations)
        for param in ctype.params:
            if param.annotations:
                sets.append(param.annotations)
            sets.extend(_annotation_sets_of_type(param.type, seen))
        sets.extend(_annotation_sets_of_type(ctype.return_type, seen))
    elif isinstance(ctype, CStruct):
        for member in ctype.fields:
            if member.annotations:
                sets.append(member.annotations)
            sets.extend(_annotation_sets_of_type(member.type, seen))
    return sets


def _span_lines(node: ast.Node) -> int:
    """Approximate number of source lines covered by ``node``."""
    lines = [n.location.line for n in walk(node) if n.location.line > 0]
    if not lines:
        return 1
    return max(lines) - min(lines) + 1


def build_report(program: Program,
                 instrumentation: InstrumentationResult | None = None) -> ConversionReport:
    """Compute the Deputy conversion census for ``program``."""
    report = ConversionReport()
    seen_types: set[int] = set()
    annotated_lines: set[tuple[str, int]] = set()

    def note_annotations(sets: list[AnnotationSet], filename: str, line: int) -> None:
        for annotation_set in sets:
            for annotation in annotation_set:
                report.annotation_count += 1
                kind = annotation.kind.name.lower()
                report.by_annotation_kind[kind] = report.by_annotation_kind.get(kind, 0) + 1
                if line > 0:
                    annotated_lines.add((filename, line))

    for unit in program.units:
        last_line = 0
        for node in walk(unit):
            if node.location.filename == unit.filename:
                last_line = max(last_line, node.location.line)
            if isinstance(node, ast.Declaration):
                sets = [node.annotations] if node.annotations else []
                sets += _annotation_sets_of_type(node.type, seen_types)
                note_annotations(sets, node.location.filename, node.location.line)
            elif isinstance(node, ast.FuncDef):
                report.functions_converted += 1
                sets = [node.annotations] if node.annotations else []
                sets += _annotation_sets_of_type(node.type, seen_types)
                note_annotations(sets, node.location.filename, node.location.line)
                if node.annotations.has(AnnotationKind.TRUSTED):
                    report.trusted_functions += 1
                    report.trusted_lines += _span_lines(node)
            elif isinstance(node, ast.StructDecl):
                sets = _annotation_sets_of_type(node.ctype, seen_types)
                note_annotations(sets, node.location.filename, node.location.line)
            elif isinstance(node, ast.Block) and node.trusted:
                report.trusted_blocks += 1
                report.trusted_lines += _span_lines(node)
            elif isinstance(node, ast.Cast) and node.trusted:
                report.trusted_casts += 1
                annotated_lines.add((node.location.filename, node.location.line))
        report.total_lines += last_line

    report.annotated_lines = len(annotated_lines)
    if instrumentation is not None:
        report.checks_inserted = instrumentation.checks_inserted
        report.checks_static = instrumentation.checks_static
        report.checks_interval = instrumentation.checks_interval
        report.checks_relational = instrumentation.checks_relational
        report.checks_elided = instrumentation.checks_elided
        report.check_errors = len(instrumentation.errors)
    return report
