"""Deputy: dependent pointer types and hybrid memory-safety checking."""

from .checker import (
    Decision,
    DeputyOptions,
    FunctionCheckResult,
    Obligation,
    ObligationKind,
    ObligationStatus,
    check_program,
)
from .instrument import (
    DeputyInstrumenter,
    InstrumentationResult,
    instrument_copy,
    instrument_program,
)
from .optimizer import CheckCache
from .report import ConversionReport, build_report
from .runtime import CHECK_BUILTINS, DeputyRuntimeStats, install
from .typesystem import (
    DeputyError,
    PointerFacts,
    PointerKind,
    TypeEnv,
    compatible_pointer_cast,
    pointer_facts,
)

__all__ = [
    "Decision", "DeputyOptions", "FunctionCheckResult", "Obligation",
    "ObligationKind", "ObligationStatus", "check_program",
    "DeputyInstrumenter", "InstrumentationResult", "instrument_copy",
    "instrument_program",
    "CheckCache",
    "ConversionReport", "build_report",
    "CHECK_BUILTINS", "DeputyRuntimeStats", "install",
    "DeputyError", "PointerFacts", "PointerKind", "TypeEnv",
    "compatible_pointer_cast", "pointer_facts",
]
