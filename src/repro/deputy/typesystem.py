"""Deputy's dependent pointer type system.

Deputy extends C pointer types with annotations whose arguments are ordinary
program expressions (``count(len)``, ``bound(lo, hi)``, ``nullterm`` …).  This
module classifies annotated pointer types into the small set of *pointer
kinds* the checker reasons about, and provides the static type environment
used to type expressions inside a function body (parameters, locals, globals,
struct fields and call return types).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Callable, Optional

from ..annotations.attrs import AnnotationKind, AnnotationSet
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.ctypes import (
    CArray,
    CFunc,
    CInt,
    CPointer,
    CStruct,
    CType,
    INT,
    UINT,
    CHAR,
    VOID,
    pointer_to,
)

#: Return types of abstract-machine builtins that have no corpus prototype.
#: ``__raw_alloc`` in particular must type as ``void *`` so that casting its
#: result to an object pointer generates the cast obligation (and its
#: run-time size check) instead of silently typing as ``int``.  Factories,
#: not shared instances: pointer types can have annotations folded into them
#: in place.
_BUILTIN_RETURN_TYPES: dict[str, Callable[[], "CType"]] = {
    "__raw_alloc": lambda: pointer_to(VOID),
}


class PointerKind(Enum):
    """The bounds discipline of a pointer type."""

    SAFE = auto()       # points to exactly one element (or is null)
    COUNT = auto()      # points to at least count(n) elements
    BOUND = auto()      # explicit bound(lo, hi) expressions
    NULLTERM = auto()   # null-terminated sequence
    SENTINEL = auto()   # one-past-the-end pointer; not dereferenceable


@dataclass
class PointerFacts:
    """Everything Deputy knows about one pointer type."""

    kind: PointerKind = PointerKind.SAFE
    count_expr: Optional[ast.Expr] = None
    bound_lo: Optional[ast.Expr] = None
    bound_hi: Optional[ast.Expr] = None
    nonnull: bool = False
    optional: bool = False
    trusted: bool = False
    element: CType = field(default_factory=lambda: INT)

    @property
    def may_be_null(self) -> bool:
        return not self.nonnull


def pointer_facts(ctype: CType) -> PointerFacts:
    """Classify a (possibly annotated) pointer or array type."""
    stripped = ctype.strip()
    if isinstance(stripped, CArray):
        # Arrays carry their own length; model as COUNT with a constant.
        length = stripped.length if stripped.length is not None else 0
        return PointerFacts(kind=PointerKind.COUNT,
                            count_expr=ast.IntLit(value=length),
                            nonnull=True,
                            element=stripped.element)
    if not isinstance(stripped, CPointer):
        return PointerFacts(element=stripped)
    annos: AnnotationSet = stripped.annotations
    facts = PointerFacts(element=stripped.target)
    facts.nonnull = annos.has(AnnotationKind.NONNULL)
    facts.optional = annos.has(AnnotationKind.OPT)
    facts.trusted = annos.has(AnnotationKind.TRUSTED)
    count = annos.get(AnnotationKind.COUNT)
    bound = annos.get(AnnotationKind.BOUND)
    if count is not None and count.args:
        facts.kind = PointerKind.COUNT
        facts.count_expr = count.args[0]
    elif bound is not None and len(bound.args) >= 2:
        facts.kind = PointerKind.BOUND
        facts.bound_lo = bound.args[0]
        facts.bound_hi = bound.args[1]
    elif annos.has(AnnotationKind.NULLTERM):
        facts.kind = PointerKind.NULLTERM
    elif annos.has(AnnotationKind.SENTINEL):
        facts.kind = PointerKind.SENTINEL
    return facts


@dataclass
class DeputyError:
    """A static type error Deputy reports (must be fixed or trusted)."""

    message: str
    location: object
    function: str = ""

    def __str__(self) -> str:
        where = f" in {self.function}" if self.function else ""
        return f"{self.location}: error{where}: {self.message}"


class TypeEnv:
    """Static types of expressions within one function."""

    def __init__(self, program: Program, func: ast.FuncDef) -> None:
        self.program = program
        self.func = func
        self.locals: dict[str, CType] = {}
        ftype = func.type.strip()
        if isinstance(ftype, CFunc):
            for param in ftype.params:
                if param.name:
                    self.locals[param.name] = _absorb_declarator_annotations(
                        param.type, param.annotations)
        self._collect_locals(func.body)

    def _collect_locals(self, node: ast.Node) -> None:
        from ..minic.visitor import walk
        for child in walk(node):
            if isinstance(child, ast.Declaration) and not child.is_typedef:
                self.locals[child.name] = _absorb_declarator_annotations(
                    child.type, child.annotations)

    # -- lookups -------------------------------------------------------------

    def type_of_name(self, name: str) -> Optional[CType]:
        if name in self.locals:
            return self.locals[name]
        decl = self.program.globals.get(name)
        if decl is not None:
            return decl.type
        ftype = self.program.function_type(name)
        if ftype is not None:
            return pointer_to(ftype)
        return None

    def type_of(self, expr: ast.Expr) -> CType:
        """Best-effort static type of ``expr`` (INT when unknown)."""
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.CharLit):
            return CHAR
        if isinstance(expr, ast.StrLit):
            return CArray(element=CHAR, length=len(expr.value) + 1)
        if isinstance(expr, ast.Ident):
            found = self.type_of_name(expr.name)
            return found if found is not None else INT
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                return _target_of(self.type_of(expr.operand))
            if expr.op == "&":
                return pointer_to(self.type_of(expr.operand))
            return self.type_of(expr.operand)
        if isinstance(expr, ast.Postfix):
            return self.type_of(expr.operand)
        if isinstance(expr, ast.Index):
            return _target_of(self.type_of(expr.base))
        if isinstance(expr, ast.Member):
            base = self.type_of(expr.base).strip()
            if expr.arrow:
                base = _target_of(base).strip()
            if isinstance(base, CStruct) and base.complete and base.has_field(expr.name):
                return base.field_named(expr.name).type
            return INT
        if isinstance(expr, ast.Cast):
            return expr.to_type
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Ident):
                ftype = self.program.function_type(expr.func.name)
                if ftype is not None:
                    return ftype.return_type
                builtin = _BUILTIN_RETURN_TYPES.get(expr.func.name)
                if builtin is not None:
                    return builtin()
            func_type = self.type_of(expr.func).strip()
            if isinstance(func_type, CPointer):
                inner = func_type.target.strip()
                if isinstance(inner, CFunc):
                    return inner.return_type
            return INT
        if isinstance(expr, ast.Assign):
            return self.type_of(expr.target)
        if isinstance(expr, ast.Conditional):
            return self.type_of(expr.then)
        if isinstance(expr, ast.Binary):
            left = self.type_of(expr.left)
            stripped = left.strip()
            if isinstance(stripped, (CPointer, CArray)):
                return left
            right = self.type_of(expr.right)
            if isinstance(right.strip(), (CPointer, CArray)):
                return right
            return left
        if isinstance(expr, (ast.SizeofExpr, ast.SizeofType)):
            return UINT
        if isinstance(expr, ast.Comma):
            return self.type_of(expr.exprs[-1]) if expr.exprs else INT
        return INT

    def facts_of(self, expr: ast.Expr) -> PointerFacts:
        """Pointer facts for the static type of ``expr``."""
        return pointer_facts(self.type_of(expr))


def _absorb_declarator_annotations(ctype: CType, annotations: AnnotationSet) -> CType:
    """Fold trailing declarator annotations into a pointer type.

    Deputy's canonical syntax puts annotations after the ``*``
    (``struct buf * nonnull b``), but writing them after the declarator name
    (``struct buf *b nonnull``) is also accepted; either way the facts end up
    on the pointer type the checker consults.
    """
    if not annotations:
        return ctype
    from ..annotations.attrs import DEPUTY_KINDS
    deputy_only = annotations.only(DEPUTY_KINDS)
    if not deputy_only:
        return ctype
    stripped = ctype.strip()
    if isinstance(stripped, CPointer):
        for annotation in deputy_only:
            if not stripped.annotations.has(annotation.kind):
                stripped.annotations.add(annotation)
    return ctype


def _target_of(ctype: CType) -> CType:
    stripped = ctype.strip()
    if isinstance(stripped, CPointer):
        return stripped.target
    if isinstance(stripped, CArray):
        return stripped.element
    return INT


def is_constant_expr(expr: ast.Expr) -> bool:
    """Whether ``expr`` is a literal integer constant."""
    return isinstance(expr, (ast.IntLit, ast.CharLit))


def constant_value(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, (ast.IntLit, ast.CharLit)):
        return expr.value
    return None


def compatible_pointer_cast(from_type: CType, to_type: CType) -> bool:
    """Deputy's cast rule: which pointer casts are allowed without `trusted`.

    Casts involving ``void *`` (the ubiquitous kmalloc idiom) and casts
    between pointers with structurally compatible targets are permitted —
    Deputy backs them with a run-time size check.  Casts between unrelated
    object types (e.g. ``struct inode *`` to ``struct dentry *``) are static
    errors unless marked trusted.
    """
    from ..minic.ctypes import CVoid, types_compatible
    src, dst = from_type.strip(), to_type.strip()
    if not isinstance(dst, CPointer):
        return True
    if not isinstance(src, (CPointer, CArray, CInt)):
        return True
    if isinstance(src, CInt):
        # Integer-to-pointer casts are how the kernel talks to hardware;
        # Deputy treats them as trusted-by-default only for constant 0.
        return True
    src_target = (src.target if isinstance(src, CPointer) else src.element).strip()
    dst_target = dst.target.strip()
    if isinstance(src_target, CVoid) or isinstance(dst_target, CVoid):
        return True
    if isinstance(src_target, CInt) and src_target.kind == "char":
        return True
    if isinstance(dst_target, CInt) and dst_target.kind == "char":
        return True
    return types_compatible(src_target, dst_target)
