"""The Deputy instrumenter: a source-to-source rewriting pass.

For every obligation the static checker could not discharge, the instrumenter
splices a call to one of the ``__deputy_check_*`` runtime builtins into the
expression tree, using the C comma operator so that the check runs immediately
before the access it protects:

    ``buf[i]``            becomes  ``(__deputy_check_index(i, n), buf[i])``
    ``p->refcnt = 1;``    becomes  ``(__deputy_check_ptr(p, 32), p->refcnt = 1);``

Because the inserted checks are ordinary calls, the instrumented program is
still a plain MiniC program: it can be pretty-printed, re-parsed and executed
by the unmodified abstract machine, which is exactly how a C-to-C compiler
like the real Deputy slots into the kernel build.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..dataflow.cfg import build_cfg
from ..dataflow.domains import facts_of
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.ctypes import CPointer
from ..minic.visitor import walk
from .checker import (
    Decision,
    DeputyOptions,
    FunctionCheckResult,
    Obligation,
    ObligationKind,
    ObligationStatus,
    decide_call_contracts,
    decide_cast,
    decide_deref,
    decide_index,
    decide_union_access,
)
from .optimizer import CheckCache, writes_memory, written_names
from .typesystem import DeputyError, TypeEnv


@dataclass
class InstrumentationResult:
    """The outcome of instrumenting a whole program."""

    program: Program
    results: dict[str, FunctionCheckResult] = field(default_factory=dict)

    @property
    def errors(self) -> list[DeputyError]:
        collected: list[DeputyError] = []
        for result in self.results.values():
            collected.extend(result.errors)
        return collected

    def total(self, status: ObligationStatus) -> int:
        return sum(r.count(status) for r in self.results.values())

    @property
    def checks_inserted(self) -> int:
        return self.total(ObligationStatus.RUNTIME)

    @property
    def checks_static(self) -> int:
        return self.total(ObligationStatus.STATIC)

    @property
    def checks_elided(self) -> int:
        return self.total(ObligationStatus.ELIDED)

    @property
    def checks_interval(self) -> int:
        """Static discharges owed to the interval domain specifically."""
        return sum(1 for result in self.results.values()
                   for obligation in result.obligations
                   if obligation.status is ObligationStatus.STATIC
                   and obligation.detail == "interval-bounded index")

    @property
    def checks_relational(self) -> int:
        """Static discharges owed to relational (difference-bound) facts."""
        return sum(1 for result in self.results.values()
                   for obligation in result.obligations
                   if obligation.status is ObligationStatus.STATIC
                   and obligation.detail == "relational-bounded index")


class DeputyInstrumenter:
    """Instrument every function of a program with Deputy run-time checks.

    ``env_cache`` is an optional shared per-function :class:`TypeEnv` table
    (the engine's symbol-table artifact); environments are looked up there
    first and stored back, so repeated analyses over the same program do not
    rebuild them.

    ``facts`` is the engine's per-function dataflow artifact
    (:class:`repro.dataflow.domains.FunctionFacts`, keyed by function name).
    The instrumenter seeds each loop body's region cache with the solved
    interval environment at the loop head, which is what lets the static
    checker discharge ``i < n``-bounded index obligations instead of
    emitting ``__deputy_check_index``.  When no table is supplied the facts
    are solved on demand per function — like the other standalone checker
    entry points, results match the artifact-fed engine run by
    construction.
    """

    def __init__(self, program: Program, options: DeputyOptions | None = None,
                 env_cache: dict[str, TypeEnv] | None = None,
                 facts: dict | None = None) -> None:
        self.program = program
        self.options = options or DeputyOptions()
        self.results: dict[str, FunctionCheckResult] = {}
        self.env_cache = env_cache
        self.facts = facts
        self._facts_cache: dict = {}

    # -- public API ---------------------------------------------------------

    def run(self, rewrite: bool = True,
            functions: list[str] | None = None) -> InstrumentationResult:
        """Analyse (and, if ``rewrite``, transform) functions in place.

        ``functions`` restricts the pass to a subset of defined functions,
        which is how the engine shards checking by translation unit.
        """
        if functions is not None:
            wanted = set(functions)
        for unit in self.program.units:
            for decl in unit.decls:
                if isinstance(decl, ast.FuncDef):
                    if functions is not None and decl.name not in wanted:
                        continue
                    self._do_function(decl, rewrite)
        return InstrumentationResult(program=self.program, results=self.results)

    # -- per function ---------------------------------------------------------

    def _env_for(self, func: ast.FuncDef) -> TypeEnv:
        if self.env_cache is None:
            return TypeEnv(self.program, func)
        env = self.env_cache.get(func.name)
        if env is None:
            env = TypeEnv(self.program, func)
            self.env_cache[func.name] = env
        return env

    def _do_function(self, func: ast.FuncDef, rewrite: bool) -> None:
        result = FunctionCheckResult(function=func.name)
        self.results[func.name] = result
        if _function_is_trusted(func):
            result.trusted = True
            return
        env = self._env_for(func)
        loop_ranges, loop_relations = self._loop_facts(func)
        worker = _FunctionInstrumenter(env, self.options, result, rewrite,
                                       safe_names=_callee_immune_names(func),
                                       loop_ranges=loop_ranges,
                                       loop_relations=loop_relations)
        new_body = worker.stmt(func.body, worker.fresh_cache())
        if rewrite and isinstance(new_body, ast.Block):
            func.body = new_body

    def _loop_facts(self, func: ast.FuncDef) -> tuple[dict[int, tuple],
                                                      dict[int, tuple]]:
        """Solved interval and octagon loop-head states, keyed by ``id(stmt)``.

        The structural walk cannot iterate a loop body to a fixpoint, so the
        region caches import the CFG solver's widened/narrowed state at each
        ``while``/``for`` condition block — both the per-name interval
        ranges and the relational (difference-bound) environment, which is
        how a bound derived *before* the loop (``limit = n - 1``) reaches
        the body's entailment queries.  ``do``/``while`` is excluded: its
        condition block follows the body, so its state is not the body's
        entry state.
        """
        if self.facts is not None:
            facts = self.facts.get(func.name)
        else:
            facts = facts_of(func, cache=self._facts_cache)
        interval_envs = getattr(facts, "interval_envs", None) or {}
        octagon_envs = getattr(facts, "octagon_envs", None) or {}
        if not interval_envs and not octagon_envs:
            return {}, {}
        ranges: dict[int, tuple] = {}
        relations: dict[int, tuple] = {}
        for block in build_cfg(func).blocks:
            element = block.condition_element()
            if element is None or not isinstance(element.stmt,
                                                 (ast.While, ast.For)):
                continue
            frozen = interval_envs.get(block.index)
            if frozen:
                ranges[id(element.stmt)] = frozen
            frozen = octagon_envs.get(block.index)
            if frozen:
                relations[id(element.stmt)] = frozen
        return ranges, relations


def _function_is_trusted(func: ast.FuncDef) -> bool:
    from ..annotations.attrs import AnnotationKind
    return func.annotations.has(AnnotationKind.TRUSTED)


def _callee_immune_names(func: ast.FuncDef) -> frozenset[str]:
    """Variables of ``func`` that no function call can write.

    Parameters and scalar locals qualify unless their address is taken
    (``&x``) somewhere in the body; array locals decay to pointers at any
    use, so they never qualify.  Everything else — globals above all — can
    be stored to by a callee, which is what makes an index check over such
    a name unsound to keep across a call.  A name declared more than once
    (an inner-scope local shadowing another local or a parameter) is also
    excluded: the region cache keys checks and constant facts by bare name
    and cannot tell the two storage locations apart.
    """
    from ..minic.ctypes import CArray

    def base_ident(expr: ast.Expr) -> str | None:
        # &s.field / &arr[0] escape the base variable just as &x does.
        while isinstance(expr, (ast.Member, ast.Index)):
            expr = expr.base
        if isinstance(expr, ast.Cast):
            return base_ident(expr.operand)
        return expr.name if isinstance(expr, ast.Ident) else None

    names = {param.name for param in getattr(func.type.strip(), "params", [])
             if getattr(param, "name", None)}
    escaped: set[str] = set()
    for node in walk(func.body):
        if isinstance(node, ast.Declaration) and node.name and not node.is_typedef:
            if node.name in names:
                escaped.add(node.name)  # shadowed: ambiguous by name
            elif isinstance(node.type.strip(), CArray):
                escaped.add(node.name)
            else:
                names.add(node.name)
        elif isinstance(node, ast.Unary) and node.op == "&":
            name = base_ident(node.operand)
            if name is not None:
                escaped.add(name)
    return frozenset(names - escaped)


def _case_terminates(stmts: list[ast.Stmt]) -> bool:
    """Whether a case arm's statement list cannot fall into the next arm."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Break, ast.Return, ast.Goto, ast.Continue))


def _has_side_effects(check: ast.Expr) -> bool:
    """Whether a check call's arguments contain side-effecting expressions.

    Calls to other Deputy checks are pure and idempotent, so only ordinary
    calls, assignments and increments count.
    """
    from ..minic.visitor import walk
    if not isinstance(check, ast.Call):
        return False
    for arg in check.args:
        for node in walk(arg):
            if isinstance(node, ast.Call):
                name = node.func.name if isinstance(node.func, ast.Ident) else ""
                if not name.startswith("__deputy_check"):
                    return True
            elif isinstance(node, (ast.Assign, ast.Postfix)):
                return True
            elif isinstance(node, ast.Unary) and node.op in ("++", "--"):
                return True
    return False


class _FunctionInstrumenter:
    """Walks one function body, deciding and splicing checks."""

    def __init__(self, env: TypeEnv, options: DeputyOptions,
                 result: FunctionCheckResult, rewrite: bool,
                 safe_names: frozenset[str] = frozenset(),
                 loop_ranges: dict[int, tuple] | None = None,
                 loop_relations: dict[int, tuple] | None = None) -> None:
        self.env = env
        self.options = options
        self.result = result
        self.rewrite = rewrite
        self.in_trusted_block = 0
        self.safe_names = safe_names
        self.loop_ranges = loop_ranges or {}
        self.loop_relations = loop_relations or {}

    def fresh_cache(self, enabled: bool | None = None) -> CheckCache:
        """A new region cache carrying this function's callee-immune names."""
        if enabled is None:
            enabled = self.options.optimize
        return CheckCache(enabled=enabled, safe_names=self.safe_names)

    # -- bookkeeping ----------------------------------------------------------

    def _record(self, decision: Decision, loc, cache: CheckCache) -> ast.Expr | None:
        """Record the obligation; return the check expression to splice (if any)."""
        status = decision.status
        check = decision.check
        if self.in_trusted_block:
            status = ObligationStatus.TRUSTED
            check = None
        elif (status is ObligationStatus.RUNTIME and check is not None
              and decision.kind is not ObligationKind.CAST
              and _has_side_effects(check)):
            # The check would duplicate a side-effecting operand (a call or an
            # increment); rather than evaluate it twice, trust the access and
            # flag it for review -- the same escape hatch the paper gives
            # programmers for code the tool cannot handle.
            status = ObligationStatus.TRUSTED
            check = None
            decision = Decision(status, decision.kind, None,
                                "operand has side effects; check not duplicable")
        elif status is ObligationStatus.RUNTIME and check is not None:
            if cache.is_redundant(check):
                status = ObligationStatus.ELIDED
                check = None
            else:
                cache.remember(check)
        if status is ObligationStatus.ERROR:
            self.result.errors.append(DeputyError(
                message=decision.detail or "operation cannot be checked",
                location=loc, function=self.result.function))
        self.result.obligations.append(Obligation(
            kind=decision.kind, status=status, location=loc,
            function=self.result.function, detail=decision.detail,
            check=check))
        if not self.rewrite:
            return None
        return check

    def _wrap(self, checks: list[ast.Expr], expr: ast.Expr) -> ast.Expr:
        if not checks:
            return expr
        return ast.Comma(exprs=[*checks, expr], location=expr.location)

    # -- statements --------------------------------------------------------------

    def stmt(self, stmt: ast.Stmt, cache: CheckCache) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            if stmt.trusted:
                self.in_trusted_block += 1
                # Still walk it so obligations are counted as trusted.
                for index, inner in enumerate(stmt.stmts):
                    stmt.stmts[index] = self.stmt(inner, self.fresh_cache(enabled=False))
                self.in_trusted_block -= 1
                return stmt
            for index, inner in enumerate(stmt.stmts):
                stmt.stmts[index] = self.stmt(inner, cache)
            return stmt
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.expr(stmt.expr, cache)
            self._after_effects(stmt.expr, cache)
            return stmt
        if isinstance(stmt, ast.DeclStmt):
            init = stmt.decl.init
            if init is not None:
                self._instrument_initializer(init, cache)
            cache.invalidate_name(stmt.decl.name)
            cache.bind_decl(stmt.decl.name,
                            init.expr if init is not None and not init.is_list
                            else None)
            return stmt
        if isinstance(stmt, ast.If):
            stmt.cond = self.expr(stmt.cond, cache)
            self._after_effects(stmt.cond, cache)
            then_cache = cache.fork(stmt.cond, branch_true=True)
            else_cache = cache.fork(stmt.cond, branch_true=False)
            stmt.then = self.stmt(stmt.then, then_cache)
            if stmt.otherwise is not None:
                stmt.otherwise = self.stmt(stmt.otherwise, else_cache)
            cache.invalidate_all()
            return stmt
        if isinstance(stmt, ast.While):
            cache.invalidate_all()
            body_cache = self.fresh_cache()
            body_cache.seed_ranges(self.loop_ranges.get(id(stmt), ()))
            body_cache.seed_relations(self.loop_relations.get(id(stmt), ()))
            stmt.cond = self.expr(stmt.cond, body_cache)
            # Every iteration enters the body through the condition, so the
            # body may assume its truth facts (the region reset above keeps
            # loop-carried state out).
            body_cache = body_cache.fork(stmt.cond, branch_true=True)
            stmt.body = self.stmt(stmt.body, body_cache)
            return stmt
        if isinstance(stmt, ast.DoWhile):
            cache.invalidate_all()
            body_cache = self.fresh_cache()
            stmt.body = self.stmt(stmt.body, body_cache)
            stmt.cond = self.expr(stmt.cond, body_cache)
            return stmt
        if isinstance(stmt, ast.For):
            if isinstance(stmt.init, ast.Expr):
                stmt.init = self.expr(stmt.init, cache)
            elif isinstance(stmt.init, ast.Declaration) and stmt.init.init is not None:
                self._instrument_initializer(stmt.init.init, cache)
            cache.invalidate_all()
            body_cache = self.fresh_cache()
            body_cache.seed_ranges(self.loop_ranges.get(id(stmt), ()))
            body_cache.seed_relations(self.loop_relations.get(id(stmt), ()))
            if stmt.cond is not None:
                stmt.cond = self.expr(stmt.cond, body_cache)
                # The body only runs when the condition held, exactly as in
                # the `while` case above.
                body_cache = body_cache.fork(stmt.cond, branch_true=True)
            stmt.body = self.stmt(stmt.body, body_cache)
            if stmt.step is not None:
                stmt.step = self.expr(stmt.step, body_cache)
            return stmt
        if isinstance(stmt, ast.Switch):
            stmt.cond = self.expr(stmt.cond, cache)
            self._after_effects(stmt.cond, cache)
            fallthrough: CheckCache | None = None
            for case in stmt.cases:
                # Dispatch entry knows scrutinee == case value; an arm that
                # can also be entered by fallthrough keeps only the facts
                # (cached checks and constants) both entry paths agree on —
                # a pre-switch fact the previous arm invalidated must not
                # survive into an arm that arm falls into.
                case_cache = cache.fork_switch(stmt.cond, case.value)
                if fallthrough is not None:
                    case_cache = case_cache.joined(fallthrough)
                for index, inner in enumerate(case.stmts):
                    case.stmts[index] = self.stmt(inner, case_cache)
                fallthrough = (None if _case_terminates(case.stmts)
                               else case_cache)
            cache.invalidate_all()
            return stmt
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self.expr(stmt.value, cache)
            return stmt
        if isinstance(stmt, ast.Label):
            cache.invalidate_all()
            if stmt.stmt is not None:
                stmt.stmt = self.stmt(stmt.stmt, cache)
            return stmt
        # Break, Continue, Goto, Empty, Asm need no instrumentation.
        return stmt

    def _instrument_initializer(self, init: ast.Initializer, cache: CheckCache) -> None:
        if init.is_list:
            for element in init.elements or []:
                self._instrument_initializer(element, cache)
        elif init.expr is not None:
            init.expr = self.expr(init.expr, cache)

    def _after_effects(self, expr: ast.Expr, cache: CheckCache) -> None:
        """Invalidate cached checks according to the side effects of ``expr``,
        then learn the constant bindings its assignments establish."""
        for name in written_names(expr):
            cache.invalidate_name(name)
        if writes_memory(expr):
            cache.invalidate_memory()
        cache.note_effects(expr)

    # -- expressions (rvalue position) -------------------------------------------

    def expr(self, expr: ast.Expr, cache: CheckCache) -> ast.Expr:
        if isinstance(expr, ast.Unary) and expr.op == "*":
            operand = self.expr(expr.operand, cache)
            expr.operand = operand
            decision = decide_deref(self.env, operand,
                                    self.env.type_of(expr), self.options,
                                    expr.location)
            check = self._record(decision, expr.location, cache)
            return self._wrap([check] if check else [], expr)
        if isinstance(expr, ast.Unary) and expr.op in ("&", "++", "--"):
            new_target, checks = self.lvalue(expr.operand, cache)
            expr.operand = new_target
            return self._wrap(checks, expr)
        if isinstance(expr, ast.Unary):
            expr.operand = self.expr(expr.operand, cache)
            return expr
        if isinstance(expr, ast.Postfix):
            new_target, checks = self.lvalue(expr.operand, cache)
            expr.operand = new_target
            return self._wrap(checks, expr)
        if isinstance(expr, ast.Index):
            expr.base = self.expr(expr.base, cache)
            expr.index = self.expr(expr.index, cache)
            decision = decide_index(self.env, expr.base, expr.index,
                                    self.options, expr.location,
                                    fold=cache.fold,
                                    prove=cache.prove_index)
            check = self._record(decision, expr.location, cache)
            return self._wrap([check] if check else [], expr)
        if isinstance(expr, ast.Member):
            return self._member(expr, cache, as_lvalue=False)[0]
        if isinstance(expr, ast.Assign):
            return self._assign(expr, cache)
        if isinstance(expr, ast.Binary):
            expr.left = self.expr(expr.left, cache)
            expr.right = self.expr(expr.right, cache)
            return expr
        if isinstance(expr, ast.Conditional):
            expr.cond = self.expr(expr.cond, cache)
            then_cache = cache.fork()
            else_cache = cache.fork()
            expr.then = self.expr(expr.then, then_cache)
            expr.otherwise = self.expr(expr.otherwise, else_cache)
            return expr
        if isinstance(expr, ast.Call):
            return self._call(expr, cache)
        if isinstance(expr, ast.Cast):
            expr.operand = self.expr(expr.operand, cache)
            decision = decide_cast(self.env, expr, self.options)
            check = self._record(decision, expr.location, cache)
            if check is not None and isinstance(check, ast.Call):
                # Cast checks are pass-through: the runtime builtin returns its
                # first argument, so the (possibly side-effecting) operand is
                # evaluated exactly once:  (T *)__deputy_check_cast(e, size).
                check.args[0] = expr.operand
                expr.operand = check
            return expr
        if isinstance(expr, ast.Comma):
            expr.exprs = [self.expr(item, cache) for item in expr.exprs]
            return expr
        # Literals, identifiers, sizeof: nothing to do.
        return expr

    def _member(self, expr: ast.Member, cache: CheckCache,
                as_lvalue: bool) -> tuple[ast.Expr, list[ast.Expr]]:
        checks: list[ast.Expr] = []
        if expr.arrow:
            expr.base = self.expr(expr.base, cache)
            struct_type = self.env.type_of(expr.base).strip()
            target = struct_type.target if isinstance(struct_type, CPointer) else struct_type
            decision = decide_deref(self.env, expr.base, target, self.options,
                                    expr.location)
            check = self._record(decision, expr.location, cache)
            if check is not None:
                checks.append(check)
        else:
            if as_lvalue:
                new_base, base_checks = self.lvalue(expr.base, cache)
                expr.base = new_base
                checks.extend(base_checks)
            else:
                expr.base = self.expr(expr.base, cache)
        union_decision = decide_union_access(self.env, expr, self.options)
        if union_decision is not None:
            check = self._record(union_decision, expr.location, cache)
            if check is not None:
                checks.append(check)
        if as_lvalue:
            return expr, checks
        return self._wrap(checks, expr), []

    def _assign(self, expr: ast.Assign, cache: CheckCache) -> ast.Expr:
        new_target, target_checks = self.lvalue(expr.target, cache)
        expr.target = new_target
        expr.value = self.expr(expr.value, cache)
        self._after_effects(expr, cache)
        return self._wrap(target_checks, expr)

    def _call(self, expr: ast.Call, cache: CheckCache) -> ast.Expr:
        if not isinstance(expr.func, ast.Ident):
            expr.func = self.expr(expr.func, cache)
        expr.args = [self.expr(arg, cache) for arg in expr.args]
        checks: list[ast.Expr] = []
        for decision in decide_call_contracts(self.env, expr, self.options):
            check = self._record(decision, expr.location, cache)
            if check is not None:
                checks.append(check)
        cache.invalidate_memory()
        return self._wrap(checks, expr)

    # -- lvalue position ------------------------------------------------------------

    def lvalue(self, expr: ast.Expr, cache: CheckCache) -> tuple[ast.Expr, list[ast.Expr]]:
        """Instrument an lvalue; returns (expression, hoisted checks)."""
        if isinstance(expr, ast.Ident):
            return expr, []
        if isinstance(expr, ast.Unary) and expr.op == "*":
            expr.operand = self.expr(expr.operand, cache)
            decision = decide_deref(self.env, expr.operand,
                                    self.env.type_of(expr), self.options,
                                    expr.location)
            check = self._record(decision, expr.location, cache)
            return expr, [check] if check else []
        if isinstance(expr, ast.Index):
            expr.base = self.expr(expr.base, cache)
            expr.index = self.expr(expr.index, cache)
            decision = decide_index(self.env, expr.base, expr.index,
                                    self.options, expr.location,
                                    fold=cache.fold,
                                    prove=cache.prove_index)
            check = self._record(decision, expr.location, cache)
            return expr, [check] if check else []
        if isinstance(expr, ast.Member):
            return self._member(expr, cache, as_lvalue=True)
        if isinstance(expr, ast.Cast):
            inner, checks = self.lvalue(expr.operand, cache)
            expr.operand = inner
            return expr, checks
        # Not a recognised lvalue shape; instrument as an rvalue.
        return self.expr(expr, cache), []


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def instrument_program(program: Program,
                       options: DeputyOptions | None = None) -> InstrumentationResult:
    """Instrument ``program`` in place and return the result summary."""
    return DeputyInstrumenter(program, options).run(rewrite=True)


def instrument_copy(program: Program,
                    options: DeputyOptions | None = None) -> InstrumentationResult:
    """Instrument a deep copy of ``program``, leaving the original untouched."""
    clone = copy.deepcopy(program)
    return DeputyInstrumenter(clone, options).run(rewrite=True)
