"""The Deputy run-time check library.

These builtins implement the checks the instrumenter splices into the
program.  They are registered on an :class:`~repro.machine.interpreter.Interpreter`
by :func:`install`, charge cycles from the Deputy entries of the cost model,
and raise :class:`~repro.machine.errors.CheckFailure` (tool ``"deputy"``) when
a check fails — which is the moment Deputy turns a would-be memory-safety bug
into a controlled failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.errors import CheckFailure
from ..machine.interpreter import Interpreter
from ..machine.values import TypedValue, VOID_VALUE


@dataclass
class DeputyRuntimeStats:
    """Counters kept by the runtime while the instrumented kernel runs."""

    checks_executed: int = 0
    failures: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def bump(self, kind: str) -> None:
        self.checks_executed += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


def install(interp: Interpreter) -> DeputyRuntimeStats:
    """Register the ``__deputy_check_*`` builtins on ``interp``."""
    stats = DeputyRuntimeStats()

    def fail(message: str, loc) -> None:
        stats.failures += 1
        raise CheckFailure(message, tool="deputy", location=loc)

    def check_ptr(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        stats.bump("ptr")
        interp.counter.charge("deputy_nonnull")
        interp.counter.charge("deputy_bounds")
        addr = args[0].as_int()
        size = args[1].as_int() if len(args) > 1 else 1
        if addr == 0:
            fail("null pointer dereference", loc)
        if not interp.memory.is_valid(addr, max(size, 1)):
            fail(f"pointer 0x{addr:x} does not refer to {size} valid bytes", loc)
        return VOID_VALUE

    def check_nonnull(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        stats.bump("nonnull")
        interp.counter.charge("deputy_nonnull")
        if args[0].as_int() == 0:
            fail("null pointer where nonnull was required", loc)
        return VOID_VALUE

    def check_index(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        stats.bump("index")
        interp.counter.charge("deputy_bounds")
        index = args[0].as_int()
        count = args[1].as_int()
        if index < 0 or index >= count:
            fail(f"index {index} out of bounds for count {count}", loc)
        return VOID_VALUE

    def check_count(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        stats.bump("count")
        interp.counter.charge("deputy_bounds")
        addr = args[0].as_int()
        count = args[1].as_int()
        elem_size = args[2].as_int() if len(args) > 2 else 1
        if count <= 0:
            return VOID_VALUE
        if addr == 0:
            fail("null pointer passed where count(n) elements were promised", loc)
        needed = count * max(elem_size, 1)
        if not interp.memory.is_valid(addr, needed):
            fail(f"pointer 0x{addr:x} does not have room for {count} elements "
                 f"of {elem_size} bytes", loc)
        return VOID_VALUE

    def check_nt(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        stats.bump("nullterm")
        interp.counter.charge("deputy_nullterm_base")
        addr = args[0].as_int()
        offset = args[1].as_int() if len(args) > 1 else 0
        if addr == 0:
            fail("null pointer used as nullterm sequence", loc)
        # The access must stay inside the object holding the sequence, and —
        # when it steps past the first element — the byte *before* it must not
        # already have been the terminator.  (Deputy's write-side checks keep
        # the terminator intact, so this constant-time read-side check is the
        # optimised form rather than a full O(n) rescan.)
        if not interp.memory.is_valid(addr + offset, 1):
            fail(f"nullterm access at offset {offset} runs off the object at "
                 f"0x{addr:x}", loc)
        if offset > 0:
            interp.counter.charge("deputy_nullterm_per_char")
            previous = interp.memory.load(addr + offset - 1, 1)
            if previous == 0:
                fail(f"access at offset {offset} is past the terminator of the "
                     f"nullterm sequence at 0x{addr:x}", loc)
        return VOID_VALUE

    def check_union(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        stats.bump("union")
        interp.counter.charge("deputy_union")
        if not args[0].value:
            fail("tagged-union member accessed while its when() clause is false", loc)
        return VOID_VALUE

    def check_cast(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        # Pass-through check: returns its first argument so the instrumenter
        # can wrap side-effecting operands without evaluating them twice.
        stats.bump("cast")
        interp.counter.charge("deputy_cast")
        addr = args[0].as_int()
        size = args[1].as_int() if len(args) > 1 else 1
        if addr == 0:
            return args[0]  # casting NULL is always fine
        if not interp.memory.is_valid(addr, max(size, 1)):
            fail(f"cast target 0x{addr:x} is smaller than {size} bytes", loc)
        return args[0]

    interp.register_builtin("__deputy_check_ptr", check_ptr)
    interp.register_builtin("__deputy_check_nonnull", check_nonnull)
    interp.register_builtin("__deputy_check_index", check_index)
    interp.register_builtin("__deputy_check_count", check_count)
    interp.register_builtin("__deputy_check_nt", check_nt)
    interp.register_builtin("__deputy_check_union", check_union)
    interp.register_builtin("__deputy_check_cast", check_cast)
    return stats


#: Names of every Deputy runtime builtin (used by tests and the call graph).
CHECK_BUILTINS = (
    "__deputy_check_ptr",
    "__deputy_check_nonnull",
    "__deputy_check_index",
    "__deputy_check_count",
    "__deputy_check_nt",
    "__deputy_check_union",
    "__deputy_check_cast",
)
