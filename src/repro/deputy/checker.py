"""Deputy's static checker: per-access proof obligations.

Every memory access in the program generates an *obligation*.  The checker
tries to discharge obligations statically (constant indices into constant
arrays, dereferences of address-of expressions, ``nonnull``-annotated
pointers); obligations it cannot discharge become run-time checks inserted by
the instrumenter; code the programmer marked ``trusted`` is skipped but
counted; and operations Deputy's type system cannot express at all (casts
between unrelated object pointers) are reported as static errors the
programmer must fix or explicitly trust.

This is the "hybrid checking" principle of the paper: most operations are
checked statically, the rest at run time.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

from ..annotations.attrs import AnnotationKind
from ..machine.interpreter import ctype_size
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.ctypes import CArray, CPointer, CStruct, CType
from ..minic.errors import SourceLocation
from .typesystem import (
    DeputyError,
    PointerKind,
    TypeEnv,
    compatible_pointer_cast,
    constant_value,
    pointer_facts,
)


class ObligationKind(Enum):
    """What property an access obliges us to establish."""

    DEREF = auto()          # *p and p->f accesses
    INDEX = auto()          # p[i] accesses
    CAST = auto()           # pointer casts
    CALL_CONTRACT = auto()  # count() contracts at call sites
    UNION = auto()          # tagged-union member selection
    NULLTERM = auto()       # accesses through nullterm pointers


class ObligationStatus(Enum):
    """How the obligation was discharged."""

    STATIC = auto()     # proven at compile time
    RUNTIME = auto()    # a run-time check was inserted
    ELIDED = auto()     # a run-time check was proven redundant and removed
    TRUSTED = auto()    # inside trusted code; assumed correct
    ERROR = auto()      # cannot be expressed; reported as a static error


@dataclass
class Obligation:
    """One proof obligation and its resolution."""

    kind: ObligationKind
    status: ObligationStatus
    location: SourceLocation
    function: str = ""
    detail: str = ""
    check: Optional[ast.Expr] = None     # the run-time check call, if any


@dataclass
class DeputyOptions:
    """Configuration of the Deputy checker and instrumenter."""

    optimize: bool = True            # eliminate redundant run-time checks
    honor_nonnull: bool = True       # trust nonnull annotations statically
    check_call_contracts: bool = True
    check_unions: bool = True


@dataclass
class FunctionCheckResult:
    """Checker output for one function."""

    function: str
    trusted: bool = False
    obligations: list[Obligation] = field(default_factory=list)
    errors: list[DeputyError] = field(default_factory=list)

    def count(self, status: ObligationStatus) -> int:
        return sum(1 for o in self.obligations if o.status is status)


# ---------------------------------------------------------------------------
# Per-access decisions (shared by checker and instrumenter)
# ---------------------------------------------------------------------------

@dataclass
class Decision:
    """The outcome of analysing one access."""

    status: ObligationStatus
    kind: ObligationKind
    check: Optional[ast.Expr] = None
    detail: str = ""


def _copy_expr(expr: ast.Expr) -> ast.Expr:
    return copy.deepcopy(expr)


def _check_call(name: str, args: list[ast.Expr], loc: SourceLocation) -> ast.Call:
    return ast.make_call(name, [_copy_expr(a) for a in args], loc)


def decide_deref(env: TypeEnv, pointer: ast.Expr, target_type: CType,
                 options: DeputyOptions, loc: SourceLocation) -> Decision:
    """Decide how to check ``*pointer`` / ``pointer->field``."""
    if isinstance(pointer, ast.Unary) and pointer.op == "&":
        return Decision(ObligationStatus.STATIC, ObligationKind.DEREF,
                        detail="dereference of address-of expression")
    facts = env.facts_of(pointer)
    if facts.trusted:
        return Decision(ObligationStatus.TRUSTED, ObligationKind.DEREF)
    if facts.kind is PointerKind.SENTINEL:
        return Decision(ObligationStatus.ERROR, ObligationKind.DEREF,
                        detail="dereference of sentinel (one-past-the-end) pointer")
    if facts.nonnull and options.honor_nonnull and facts.kind in (
            PointerKind.SAFE, PointerKind.COUNT):
        return Decision(ObligationStatus.STATIC, ObligationKind.DEREF,
                        detail="nonnull-annotated pointer")
    size = max(ctype_size(target_type), 1)
    check = _check_call("__deputy_check_ptr",
                        [pointer, ast.int_lit(size)], loc)
    return Decision(ObligationStatus.RUNTIME, ObligationKind.DEREF, check=check)


def _rebind_field_expr(expr: ast.Expr, base: ast.Expr) -> ast.Expr | None:
    """Re-express a field-relative annotation argument at an access site.

    A struct field annotated ``char * count(core_size) core_area`` states its
    bound in terms of a *sibling field*; at an access ``mod->core_area[i]``
    the bound must be evaluated as ``mod->core_size``.  Identifiers that name
    a field of the container are rebound; if the container expression is not
    syntactically available the caller falls back to a trusted obligation.
    """
    # Instrumentation may already have wrapped the base in (check, base);
    # the rightmost expression is the access we care about.
    while isinstance(base, ast.Comma) and base.exprs:
        base = base.exprs[-1]
    if not isinstance(base, ast.Member):
        return expr
    container = base.base
    arrow = base.arrow
    from ..minic.visitor import Transformer, walk

    class _Rebind(Transformer):
        def visit_Ident(self, node: ast.Ident) -> ast.Expr:
            return ast.Member(base=_copy_expr(container), name=node.name,
                              arrow=arrow, location=node.location)

    has_idents = any(isinstance(node, ast.Ident) for node in walk(expr))
    if not has_idents:
        return expr
    return _Rebind().visit(_copy_expr(expr))


def decide_index(env: TypeEnv, base: ast.Expr, index: ast.Expr,
                 options: DeputyOptions, loc: SourceLocation,
                 fold=None, prove=None) -> Decision:
    """Decide how to check ``base[index]``.

    ``fold(expr) -> int | None`` supplies flow-sensitive constant facts from
    the region cache (:class:`repro.deputy.optimizer.CheckCache`): an index
    that is a variable with a proven-constant value, compared against a
    constant bound, is discharged statically — the condition-aware twin of
    the literal-constant case — instead of emitting
    ``__deputy_check_index(k, n)``.  Only the *index* is folded through the
    region facts: count/bound expressions name struct fields, which could
    shadow an identically-named local, so they fold through literal
    constants alone.

    ``prove(index, bound) -> str | None`` is the region cache's
    interval/relational prover: it discharges the non-constant case
    ``0 <= index < bound`` when the interval facts pin the lower bound and
    either the index's numeric interval beats a literal bound
    (``"interval"``) or the difference-bound environment entails the strict
    upper bound (``"relational"`` — a dominating loop guard, possibly
    through derived bounds like ``limit == n - 1``).  It receives the
    bound *as rendered at the access site* (after field rebinding), so
    atoms recorded from the loop condition match.
    """
    base_type = env.type_of(base)
    facts = pointer_facts(base_type)
    if facts.trusted:
        return Decision(ObligationStatus.TRUSTED, ObligationKind.INDEX)
    index_const = constant_value(index)
    if index_const is None and fold is not None:
        index_const = fold(index)
    if facts.kind is PointerKind.COUNT and facts.count_expr is not None:
        count_const = constant_value(facts.count_expr)
        if (index_const is not None and count_const is not None
                and 0 <= index_const < count_const):
            return Decision(ObligationStatus.STATIC, ObligationKind.INDEX,
                            detail=f"constant index {index_const} < {count_const}")
        count_expr = _rebind_field_expr(facts.count_expr, base)
        if count_expr is None:
            return Decision(ObligationStatus.TRUSTED, ObligationKind.INDEX,
                            detail="count expression not expressible at access site")
        if prove is not None and (proof := prove(index, count_expr)):
            return Decision(ObligationStatus.STATIC, ObligationKind.INDEX,
                            detail=f"{proof}-bounded index")
        check = _check_call("__deputy_check_index",
                            [index, count_expr], loc)
        return Decision(ObligationStatus.RUNTIME, ObligationKind.INDEX, check=check)
    if facts.kind is PointerKind.BOUND and facts.bound_hi is not None:
        bound_const = constant_value(facts.bound_hi)
        if (index_const is not None and bound_const is not None
                and 0 <= index_const < bound_const):
            return Decision(ObligationStatus.STATIC, ObligationKind.INDEX,
                            detail=f"constant index {index_const} < {bound_const}")
        if prove is not None and (proof := prove(index, facts.bound_hi)):
            return Decision(ObligationStatus.STATIC, ObligationKind.INDEX,
                            detail=f"{proof}-bounded index")
        check = _check_call("__deputy_check_index", [index, facts.bound_hi], loc)
        return Decision(ObligationStatus.RUNTIME, ObligationKind.INDEX, check=check)
    if facts.kind is PointerKind.NULLTERM:
        check = _check_call("__deputy_check_nt", [base, index], loc)
        return Decision(ObligationStatus.RUNTIME, ObligationKind.NULLTERM, check=check)
    # SAFE pointer used as an array: only index 0 is legal.
    if index_const == 0:
        return decide_deref(env, base, _element_type(base_type), options, loc)
    check = _check_call("__deputy_check_index", [index, ast.int_lit(1)], loc)
    return Decision(ObligationStatus.RUNTIME, ObligationKind.INDEX, check=check,
                    detail="indexing a SAFE (single-element) pointer")


def decide_cast(env: TypeEnv, cast: ast.Cast, options: DeputyOptions) -> Decision:
    """Decide how to check a pointer cast."""
    to_type = cast.to_type
    stripped = to_type.strip()
    if not isinstance(stripped, CPointer):
        return Decision(ObligationStatus.STATIC, ObligationKind.CAST)
    if cast.trusted:
        return Decision(ObligationStatus.TRUSTED, ObligationKind.CAST)
    from_type = env.type_of(cast.operand)
    if not compatible_pointer_cast(from_type, to_type):
        return Decision(
            ObligationStatus.ERROR, ObligationKind.CAST,
            detail=f"cast from {from_type} to {to_type} needs a trusted annotation")
    target = stripped.target.strip()
    from_stripped = from_type.strip()
    needs_size_check = (
        isinstance(from_stripped, (CPointer, CArray))
        and isinstance(target, CStruct))
    if needs_size_check:
        size = max(ctype_size(target), 1) if target.complete else 1
        check = _check_call("__deputy_check_cast",
                            [cast.operand, ast.int_lit(size)], cast.location)
        return Decision(ObligationStatus.RUNTIME, ObligationKind.CAST, check=check)
    return Decision(ObligationStatus.STATIC, ObligationKind.CAST)


def decide_union_access(env: TypeEnv, member: ast.Member,
                        options: DeputyOptions) -> Optional[Decision]:
    """Check a tagged-union member selection against its ``when`` clause."""
    if not options.check_unions:
        return None
    base_type = env.type_of(member.base).strip()
    if member.arrow:
        inner = base_type
        if isinstance(inner, CPointer):
            base_type = inner.target.strip()
    if not isinstance(base_type, CStruct) or not base_type.is_union:
        return None
    if not base_type.complete or not base_type.has_field(member.name):
        return None
    field_info = base_type.field_named(member.name)
    when = field_info.annotations.get(AnnotationKind.WHEN)
    if when is None or not when.args:
        return None
    # The when-expression refers to sibling fields of the struct *containing*
    # the union; substitute those names relative to the union's own base.
    container = member.base
    if not isinstance(container, ast.Member):
        return Decision(ObligationStatus.TRUSTED, ObligationKind.UNION,
                        detail="union container not syntactically visible")
    outer_base = container.base
    cond = _substitute_fields(_copy_expr(when.args[0]), outer_base, container.arrow)
    check = ast.make_call("__deputy_check_union", [cond], member.location)
    return Decision(ObligationStatus.RUNTIME, ObligationKind.UNION, check=check)


def _substitute_fields(expr: ast.Expr, base: ast.Expr, arrow: bool) -> ast.Expr:
    """Replace free identifiers in a when-clause with fields of ``base``."""
    from ..minic.visitor import Transformer

    class _Subst(Transformer):
        def visit_Ident(self, node: ast.Ident) -> ast.Expr:
            return ast.Member(base=_copy_expr(base), name=node.name, arrow=arrow,
                              location=node.location)

    return _Subst().visit(expr)


def decide_call_contracts(env: TypeEnv, call: ast.Call,
                          options: DeputyOptions) -> list[Decision]:
    """Checks for ``count()`` contracts on the callee's parameters."""
    if not options.check_call_contracts:
        return []
    if not isinstance(call.func, ast.Ident):
        return []
    ftype = env.program.function_type(call.func.name)
    if ftype is None:
        return []
    decisions: list[Decision] = []
    param_names = [p.name for p in ftype.params]
    for position, param in enumerate(ftype.params):
        if position >= len(call.args):
            break
        facts = pointer_facts(param.type)
        if facts.kind is not PointerKind.COUNT or facts.count_expr is None:
            continue
        count_expr = _substitute_params(_copy_expr(facts.count_expr),
                                        param_names, call.args)
        if count_expr is None:
            decisions.append(Decision(ObligationStatus.TRUSTED,
                                      ObligationKind.CALL_CONTRACT,
                                      detail="count expression not expressible at call site"))
            continue
        arg = call.args[position]
        arg_type = env.type_of(arg).strip()
        count_const = constant_value(count_expr)
        if (isinstance(arg_type, CArray) and arg_type.length is not None
                and count_const is not None and count_const <= arg_type.length):
            decisions.append(Decision(ObligationStatus.STATIC,
                                      ObligationKind.CALL_CONTRACT,
                                      detail="array length covers requested count"))
            continue
        element = facts.element
        size = max(ctype_size(element), 1)
        check = _check_call("__deputy_check_count",
                            [arg, count_expr, ast.int_lit(size)], call.location)
        decisions.append(Decision(ObligationStatus.RUNTIME,
                                  ObligationKind.CALL_CONTRACT, check=check))
    return decisions


def _substitute_params(expr: ast.Expr, param_names: list[str],
                       args: list[ast.Expr]) -> Optional[ast.Expr]:
    """Rewrite callee-parameter names to caller argument expressions."""
    from ..minic.visitor import Transformer, walk

    mapping = {name: args[index] for index, name in enumerate(param_names)
               if index < len(args) and name}
    unresolved = [node.name for node in walk(expr)
                  if isinstance(node, ast.Ident) and node.name not in mapping]
    if unresolved:
        return None

    class _Subst(Transformer):
        def visit_Ident(self, node: ast.Ident) -> ast.Expr:
            target = mapping.get(node.name)
            return _copy_expr(target) if target is not None else node

    return _Subst().visit(expr)


def _element_type(ctype: CType) -> CType:
    stripped = ctype.strip()
    if isinstance(stripped, CPointer):
        return stripped.target
    if isinstance(stripped, CArray):
        return stripped.element
    return stripped


# ---------------------------------------------------------------------------
# Whole-program checking (without rewriting)
# ---------------------------------------------------------------------------

def check_program(program: Program,
                  options: DeputyOptions | None = None,
                  functions: list[str] | None = None,
                  env_cache: dict[str, TypeEnv] | None = None,
                  facts: dict | None = None,
                  ) -> dict[str, FunctionCheckResult]:
    """Run the static checker over every function; no code is modified.

    Returns per-function results; the instrumenter performs the same analysis
    while also rewriting the tree.  ``functions`` restricts checking to a
    subset of definitions (the engine's per-translation-unit sharding),
    ``env_cache`` shares per-function type environments across analyses, and
    ``facts`` supplies the solved per-function dataflow artifact whose
    interval environments seed the loop-bound discharge.
    """
    from .instrument import DeputyInstrumenter

    instrumenter = DeputyInstrumenter(program, options or DeputyOptions(),
                                      env_cache=env_cache, facts=facts)
    instrumenter.run(rewrite=False, functions=functions)
    return instrumenter.results
