"""The deterministic cycle cost model.

The paper reports *relative* performance (Table 1: deputized kernel vs.
original kernel on hbench; §2.2: CCount fork/module-load overheads).  We
cannot measure a Pentium M, so the abstract machine charges a fixed number of
"cycles" for every operation it performs.  Relative numbers then fall out of
how many extra run-time checks (and how much extra per-check work) the
instrumented kernel executes on the same workload — which is exactly the
quantity the paper's experiments measure.

The constants below are loosely calibrated to early-2000s x86: memory touches
cost a couple of cycles, calls cost more, and *locked* (atomic) operations are
much more expensive, especially in the SMP configuration (the paper's footnote
4 blames slow locked operations on the Pentium 4 for the 63% SMP fork
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the interpreter for each operation class."""

    # Core interpreter operations.
    binop: int = 1
    unop: int = 1
    load: int = 2
    store: int = 2
    branch: int = 1
    call: int = 8
    ret: int = 2
    builtin_call: int = 4
    alloc: int = 30
    free: int = 20
    switch_dispatch: int = 2

    # Bulk memory operations (charged per 4-byte word moved).
    bulk_per_word: int = 1

    # Deputy run-time checks.  Calibrated so that one pointer check costs
    # about as much as the couple of ALU operations it compiles to on a
    # superscalar x86, relative to the cost of the loads/stores it guards.
    deputy_nonnull: int = 1
    deputy_bounds: int = 2
    deputy_nullterm_base: int = 2
    deputy_nullterm_per_char: int = 1
    deputy_union: int = 1
    deputy_cast: int = 2

    # CCount reference counting.
    rc_update: int = 3            # one unlocked inc or dec
    rc_locked_extra: int = 22     # extra cost of a locked inc/dec/add (SMP)
    rc_free_check_per_chunk: int = 2
    rc_zero_per_word: int = 1     # kmalloc must zero memory for CCount

    # BlockStop run-time assertions.
    blockstop_assert: int = 2

    # Hardware-ish operations.
    irq_toggle: int = 6
    context_switch: int = 120
    syscall_entry: int = 60

    # Whether the kernel is built for SMP (locked RC operations).
    smp: bool = False

    def rc_cost(self) -> int:
        """Cost of a single reference-count update under this configuration."""
        if self.smp:
            return self.rc_update + self.rc_locked_extra
        return self.rc_update

    def with_smp(self, smp: bool) -> "CostModel":
        return replace(self, smp=smp)


@dataclass
class CycleCounter:
    """Accumulates cycles and per-category operation counts."""

    model: CostModel = field(default_factory=CostModel)
    cycles: int = 0
    counts: dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, cycles: int | None = None, times: int = 1) -> None:
        """Charge ``times`` occurrences of ``category``.

        If ``cycles`` is None the cost is looked up on the model by attribute
        name; otherwise the explicit per-occurrence cost is used.
        """
        if cycles is None:
            cycles = getattr(self.model, category)
        self.cycles += cycles * times
        self.counts[category] = self.counts.get(category, 0) + times

    def snapshot(self) -> dict[str, int]:
        """A copy of the per-category counts plus the cycle total."""
        data = dict(self.counts)
        data["total_cycles"] = self.cycles
        return data

    def reset(self) -> None:
        self.cycles = 0
        self.counts.clear()


DEFAULT_COST_MODEL = CostModel()
SMP_COST_MODEL = CostModel(smp=True)
