"""The MiniC abstract machine (interpreter).

The interpreter executes linked programs (:class:`repro.machine.program.Program`)
against the flat memory model, charging cycles from the cost model for every
operation.  It plays the role of the paper's Pentium M test machine: the same
workload is run on the baseline kernel and on the instrumented kernel, and the
ratio of cycle counts reproduces the relative-performance numbers of Table 1
and §2.2.

Design notes
------------
* All variables — globals and locals — live in real memory blocks, so taking
  the address of a local, pointer arithmetic on struct fields, and CCount's
  per-chunk reference counts all behave faithfully.
* Aggregate (struct/array) expressions evaluate to their address.
* ``goto`` is supported for labels in enclosing blocks of the same function
  (the kernel's pervasive ``goto out;`` cleanup idiom).
* Functions get pseudo-addresses in a dedicated window so indirect calls
  through function-pointer tables (file_operations and friends) work.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..minic import ast_nodes as ast
from ..minic.ctypes import (
    CArray,
    CFloat,
    CFunc,
    CPointer,
    CStruct,
    CType,
    CVoid,
    CHAR,
    INT,
    UINT,
    common_arithmetic_type,
    pointer_to,
)
from ..minic.errors import SourceLocation
from .builtins import BuiltinRegistry, register_core_builtins
from .cycles import CostModel, CycleCounter, DEFAULT_COST_MODEL
from .errors import (
    MachineError,
    MemoryFault,
    StepLimitExceeded,
    UndefinedSymbol,
)
from .memory import FUNCTION_BASE, FUNCTION_STRIDE, Memory
from .program import Program
from .values import (
    TypedValue,
    VOID_VALUE,
    convert,
    int_value,
    is_signed,
    load_size,
    pointer_value,
)

DEFAULT_MAX_STEPS = 20_000_000
MAX_CALL_DEPTH = 250


@dataclass
class HardwareState:
    """Simulated hardware flags relevant to the analyses."""

    irqs_enabled: bool = True
    in_interrupt: bool = False
    preempt_count: int = 0


@dataclass
class Frame:
    """One activation record."""

    function: str
    locals: dict[str, tuple[int, CType]] = field(default_factory=dict)
    blocks: list = field(default_factory=list)


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: TypedValue) -> None:
        self.value = value


class _GotoSignal(Exception):
    def __init__(self, label: str) -> None:
        self.label = label


class Interpreter:
    """Execute a linked MiniC program."""

    def __init__(self, program: Program,
                 cost_model: CostModel | None = None,
                 max_steps: int = DEFAULT_MAX_STEPS) -> None:
        self.program = program
        self.memory = Memory()
        self.counter = CycleCounter(model=cost_model or DEFAULT_COST_MODEL)
        self.builtins = BuiltinRegistry()
        register_core_builtins(self.builtins)
        self.hw = HardwareState()
        self.console: list[str] = []
        self.warnings: list[str] = []
        self.atomic_sleep_violations: list[str] = []
        self.max_steps = max_steps
        self.globals: dict[str, tuple[int, CType]] = {}
        self._func_addr: dict[str, int] = {}
        self._addr_func: dict[int, str] = {}
        self._string_pool: dict[str, int] = {}
        self._steps = 0
        self._call_depth = 0
        if sys.getrecursionlimit() < 40_000:
            sys.setrecursionlimit(40_000)
        self._load_program()
        # Program loading (global initialisation) is not part of any workload.
        self.counter.reset()

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------

    def _load_program(self) -> None:
        next_func = FUNCTION_BASE
        for name in self.program.all_function_names():
            self._func_addr[name] = next_func
            self._addr_func[next_func] = name
            next_func += FUNCTION_STRIDE
        for name, decl in self.program.globals.items():
            ctype = self._complete_global_type(decl)
            block = self.memory.alloc(max(ctype_size(ctype), 1), kind="global", name=name)
            self.globals[name] = (block.base, ctype)
        for name, decl in self.program.globals.items():
            if decl.init is not None:
                addr, ctype = self.globals[name]
                self._store_initializer(addr, ctype, decl.init, frame=None)

    def _complete_global_type(self, decl: ast.Declaration) -> CType:
        ctype = decl.type
        stripped = ctype.strip()
        if isinstance(stripped, CArray) and stripped.length is None and decl.init is not None:
            if decl.init.is_list:
                stripped.length = len(decl.init.elements or [])
            elif decl.init.expr is not None and isinstance(decl.init.expr, ast.StrLit):
                stripped.length = len(decl.init.expr.value) + 1
        return ctype

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, name: str, *args: int) -> TypedValue:
        """Call function ``name`` with integer/pointer arguments."""
        ftype = self.program.function_type(name)
        typed_args: list[TypedValue] = []
        for index, raw in enumerate(args):
            if ftype is not None and index < len(ftype.params):
                ptype = ftype.params[index].type
            else:
                ptype = INT
            typed_args.append(TypedValue(convert(raw, ptype), ptype))
        return self.call_function(name, typed_args, SourceLocation("<run>", 0, 0))

    def register_builtin(self, name: str, fn, blocking: bool = False) -> None:
        self.builtins.register(name, fn, blocking=blocking)

    def function_address(self, name: str) -> int:
        if name not in self._func_addr:
            raise UndefinedSymbol(f"unknown function {name!r}")
        return self._func_addr[name]

    def function_at(self, addr: int) -> str | None:
        return self._addr_func.get(addr)

    def global_address(self, name: str) -> int:
        return self.globals[name][0]

    def intern_string(self, text: str) -> int:
        addr = self._string_pool.get(text)
        if addr is None:
            data = text.encode("latin-1") + b"\0"
            block = self.memory.alloc(len(data), kind="rodata", name="<string>")
            self.memory.store_bytes(block.base, data)
            addr = block.base
            self._string_pool[text] = addr
        return addr

    def console_text(self) -> str:
        return "".join(self.console)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def call_function(self, name: str, args: list[TypedValue],
                      loc: SourceLocation) -> TypedValue:
        builtin = self.builtins.get(name)
        if builtin is not None:
            self.counter.charge("builtin_call")
            return builtin.fn(self, args, loc)
        funcdef = self.program.function(name)
        if funcdef is None:
            raise UndefinedSymbol(f"call to undefined function {name!r}", loc)
        if self._call_depth >= MAX_CALL_DEPTH:
            raise MachineError(f"call depth exceeded in {name!r}", loc)
        ftype = funcdef.type.strip()
        assert isinstance(ftype, CFunc)
        frame = Frame(function=name)
        self.counter.charge("call")
        self._call_depth += 1
        try:
            for index, param in enumerate(ftype.params):
                value = args[index].value if index < len(args) else 0
                self._declare_local(frame, param.name or f"__arg{index}", param.type,
                                    initial=convert(value, param.type))
            try:
                self._exec_block(funcdef.body, frame)
                result = VOID_VALUE
            except _ReturnSignal as signal:
                result = signal.value
            except _GotoSignal as signal:
                raise MachineError(
                    f"goto to unknown label {signal.label!r} in {name}", loc)
            self.counter.charge("ret")
            return_type = ftype.return_type
            if isinstance(return_type.strip(), CVoid):
                return VOID_VALUE
            return TypedValue(convert(result.value, return_type), return_type)
        finally:
            self._call_depth -= 1
            for block in frame.blocks:
                if not block.freed:
                    self.memory.free(block)
                    self.memory.free_count -= 1
                    self.memory.bytes_freed -= block.size

    def _call_address(self, addr: int, args: list[TypedValue],
                      loc: SourceLocation) -> TypedValue:
        name = self._addr_func.get(addr)
        if name is None:
            raise MemoryFault(f"indirect call to non-function address 0x{addr:x}", loc)
        return self.call_function(name, args, loc)

    # ------------------------------------------------------------------
    # Locals
    # ------------------------------------------------------------------

    def _declare_local(self, frame: Frame, name: str, ctype: CType,
                       initial: int | float | None = None) -> int:
        size = max(ctype_size(ctype), 1)
        block = self.memory.alloc(size, kind="stack",
                                  name=f"{frame.function}:{name}")
        frame.blocks.append(block)
        frame.locals[name] = (block.base, ctype)
        if initial is not None and ctype.strip().is_scalar():
            self.memory.store(block.base, load_size(ctype), int(initial))
        return block.base

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _step(self, loc: SourceLocation) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} interpreter steps", loc)

    def exec_stmt(self, stmt: ast.Stmt, frame: Frame) -> None:
        self._step(stmt.location)
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, ast.ExprStmt):
            self.evaluate(stmt.expr, frame)
        elif isinstance(stmt, (ast.EmptyStmt, ast.Asm)):
            pass
        elif isinstance(stmt, ast.DeclStmt):
            self._exec_declaration(stmt.decl, frame)
        elif isinstance(stmt, ast.If):
            self.counter.charge("branch")
            if self.evaluate(stmt.cond, frame).value:
                self.exec_stmt(stmt.then, frame)
            elif stmt.otherwise is not None:
                self.exec_stmt(stmt.otherwise, frame)
        elif isinstance(stmt, ast.While):
            while True:
                self.counter.charge("branch")
                if not self.evaluate(stmt.cond, frame).value:
                    break
                try:
                    self.exec_stmt(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    self.exec_stmt(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                self.counter.charge("branch")
                if not self.evaluate(stmt.cond, frame).value:
                    break
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt, frame)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.Return):
            value = VOID_VALUE
            if stmt.value is not None:
                value = self.evaluate(stmt.value, frame)
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Goto):
            raise _GotoSignal(stmt.label)
        elif isinstance(stmt, ast.Label):
            if stmt.stmt is not None:
                self.exec_stmt(stmt.stmt, frame)
        else:
            raise MachineError(f"cannot execute {type(stmt).__name__}", stmt.location)

    def _exec_block(self, block: ast.Block, frame: Frame) -> None:
        stmts = block.stmts
        index = 0
        while index < len(stmts):
            try:
                self.exec_stmt(stmts[index], frame)
            except _GotoSignal as signal:
                target = _find_label(stmts, signal.label)
                if target is None:
                    raise
                index = target
                continue
            index += 1

    def _exec_for(self, stmt: ast.For, frame: Frame) -> None:
        if isinstance(stmt.init, ast.Declaration):
            self._exec_declaration(stmt.init, frame)
        elif isinstance(stmt.init, ast.Block):
            self._exec_block(stmt.init, frame)
        elif isinstance(stmt.init, ast.Expr):
            self.evaluate(stmt.init, frame)
        while True:
            self.counter.charge("branch")
            if stmt.cond is not None and not self.evaluate(stmt.cond, frame).value:
                break
            try:
                self.exec_stmt(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self.evaluate(stmt.step, frame)

    def _exec_switch(self, stmt: ast.Switch, frame: Frame) -> None:
        self.counter.charge("switch_dispatch")
        selector = self.evaluate(stmt.cond, frame).as_int()
        start: Optional[int] = None
        default: Optional[int] = None
        for index, case in enumerate(stmt.cases):
            if case.value is None:
                default = index
                continue
            if self.evaluate(case.value, frame).as_int() == selector:
                start = index
                break
        if start is None:
            start = default
        if start is None:
            return
        try:
            for case in stmt.cases[start:]:
                for inner in case.stmts:
                    self.exec_stmt(inner, frame)
        except _BreakSignal:
            pass

    def _exec_declaration(self, decl: ast.Declaration, frame: Frame) -> None:
        if decl.is_typedef:
            return
        ctype = decl.type
        stripped = ctype.strip()
        if isinstance(stripped, CArray) and stripped.length is None and decl.init is not None:
            if decl.init.is_list:
                stripped.length = len(decl.init.elements or [])
            elif isinstance(decl.init.expr, ast.StrLit):
                stripped.length = len(decl.init.expr.value) + 1
        addr = self._declare_local(frame, decl.name, ctype)
        if decl.init is not None:
            self._store_initializer(addr, ctype, decl.init, frame)

    # ------------------------------------------------------------------
    # Initializers
    # ------------------------------------------------------------------

    def _store_initializer(self, addr: int, ctype: CType, init: ast.Initializer,
                           frame: Frame | None) -> None:
        stripped = ctype.strip()
        if init.is_list:
            elements = init.elements or []
            names = init.field_names or [None] * len(elements)
            if isinstance(stripped, CStruct):
                next_index = 0
                for name, element in zip(names, elements):
                    if name is not None:
                        member = stripped.field_named(name)
                        next_index = stripped.fields.index(member) + 1
                    else:
                        member = stripped.fields[next_index]
                        next_index += 1
                    self._store_initializer(addr + member.offset, member.type,
                                            element, frame)
            elif isinstance(stripped, CArray):
                element_type = stripped.element
                for index, element in enumerate(elements):
                    self._store_initializer(addr + index * ctype_size(element_type),
                                            element_type, element, frame)
            else:
                # Scalar initialised with braces: use the first element.
                if elements:
                    self._store_initializer(addr, ctype, elements[0], frame)
            return
        expr = init.expr
        assert expr is not None
        if isinstance(expr, ast.StrLit) and isinstance(stripped, CArray):
            data = expr.value.encode("latin-1") + b"\0"
            self.memory.store_bytes(addr, data[:ctype_size(stripped)])
            return
        value = self.evaluate(expr, frame)
        if isinstance(stripped, CStruct):
            self.memory.memcpy(addr, value.as_int(), stripped.size)
            return
        self.memory.store(addr, load_size(ctype), int(convert(value.value, ctype)))
        self.counter.charge("store")

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def evaluate(self, expr: ast.Expr, frame: Frame | None) -> TypedValue:
        if isinstance(expr, ast.IntLit):
            return int_value(expr.value)
        if isinstance(expr, ast.CharLit):
            return int_value(expr.value, CHAR)
        if isinstance(expr, ast.StrLit):
            return pointer_value(self.intern_string(expr.value), pointer_to(CHAR))
        if isinstance(expr, ast.Ident):
            return self._eval_ident(expr, frame)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, frame)
        if isinstance(expr, ast.Postfix):
            return self._eval_postfix(expr, frame)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, frame)
        if isinstance(expr, ast.Conditional):
            self.counter.charge("branch")
            if self.evaluate(expr.cond, frame).value:
                return self.evaluate(expr.then, frame)
            return self.evaluate(expr.otherwise, frame)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame)
        if isinstance(expr, (ast.Index, ast.Member)):
            addr, ctype = self.lvalue(expr, frame)
            return self._load_value(addr, ctype)
        if isinstance(expr, ast.Cast):
            inner = self.evaluate(expr.operand, frame)
            return TypedValue(convert(inner.value, expr.to_type), expr.to_type)
        if isinstance(expr, ast.SizeofType):
            return int_value(ctype_size(expr.of_type), UINT)
        if isinstance(expr, ast.SizeofExpr):
            return int_value(ctype_size(self.static_type(expr.operand, frame)), UINT)
        if isinstance(expr, ast.Comma):
            result = VOID_VALUE
            for item in expr.exprs:
                result = self.evaluate(item, frame)
            return result
        raise MachineError(f"cannot evaluate {type(expr).__name__}", expr.location)

    def _eval_ident(self, expr: ast.Ident, frame: Frame | None) -> TypedValue:
        binding = self._lookup(expr.name, frame)
        if binding is not None:
            addr, ctype = binding
            return self._load_value(addr, ctype)
        if expr.name in self._func_addr:
            ftype = self.program.function_type(expr.name) or CFunc(return_type=INT)
            return pointer_value(self._func_addr[expr.name], pointer_to(ftype))
        if expr.name in self.builtins:
            # Builtins can have their address taken only if also prototyped;
            # give them a synthetic address lazily.
            addr = FUNCTION_BASE - FUNCTION_STRIDE * (len(self._string_pool) + 1)
            raise UndefinedSymbol(
                f"cannot take the value of builtin {expr.name!r} without a prototype",
                expr.location)
        raise UndefinedSymbol(f"undefined identifier {expr.name!r}", expr.location)

    def _load_value(self, addr: int, ctype: CType) -> TypedValue:
        stripped = ctype.strip()
        if isinstance(stripped, (CStruct, CArray)):
            # Aggregates evaluate to their address.
            return TypedValue(addr, ctype)
        if isinstance(stripped, CFunc):
            return TypedValue(addr, pointer_to(stripped))
        self.counter.charge("load")
        if isinstance(stripped, CFloat):
            raw = self.memory.load(addr, stripped.size)
            return TypedValue(float(raw), ctype)
        raw = self.memory.load(addr, load_size(ctype), signed=is_signed(ctype))
        return TypedValue(raw, ctype)

    def _eval_unary(self, expr: ast.Unary, frame: Frame | None) -> TypedValue:
        op = expr.op
        if op == "&":
            addr, ctype = self.lvalue(expr.operand, frame)
            return pointer_value(addr, pointer_to(ctype))
        if op == "*":
            addr, ctype = self.lvalue(expr, frame)
            return self._load_value(addr, ctype)
        if op in ("++", "--"):
            addr, ctype = self.lvalue(expr.operand, frame)
            old = self._load_value(addr, ctype)
            delta = self._pointer_step(ctype)
            new_value = old.value + delta if op == "++" else old.value - delta
            self._store_scalar(addr, ctype, new_value)
            return TypedValue(convert(new_value, ctype), ctype)
        operand = self.evaluate(expr.operand, frame)
        self.counter.charge("unop")
        if op == "-":
            return TypedValue(convert(-operand.value, operand.ctype), operand.ctype)
        if op == "~":
            return TypedValue(convert(~operand.as_int(), operand.ctype), operand.ctype)
        if op == "!":
            return int_value(0 if operand.value else 1)
        raise MachineError(f"unknown unary operator {op!r}", expr.location)

    def _eval_postfix(self, expr: ast.Postfix, frame: Frame | None) -> TypedValue:
        addr, ctype = self.lvalue(expr.operand, frame)
        old = self._load_value(addr, ctype)
        delta = self._pointer_step(ctype)
        new_value = old.value + delta if expr.op == "++" else old.value - delta
        self._store_scalar(addr, ctype, new_value)
        return old

    def _pointer_step(self, ctype: CType) -> int:
        stripped = ctype.strip()
        if isinstance(stripped, CPointer):
            return max(ctype_size(stripped.target), 1)
        return 1

    def _eval_binary(self, expr: ast.Binary, frame: Frame | None) -> TypedValue:
        op = expr.op
        if op == "&&":
            self.counter.charge("branch")
            left = self.evaluate(expr.left, frame)
            if not left.value:
                return int_value(0)
            right = self.evaluate(expr.right, frame)
            return int_value(1 if right.value else 0)
        if op == "||":
            self.counter.charge("branch")
            left = self.evaluate(expr.left, frame)
            if left.value:
                return int_value(1)
            right = self.evaluate(expr.right, frame)
            return int_value(1 if right.value else 0)
        left = self.evaluate(expr.left, frame)
        right = self.evaluate(expr.right, frame)
        self.counter.charge("binop")
        return self._binary_op(op, left, right, expr.location)

    def _binary_op(self, op: str, left: TypedValue, right: TypedValue,
                   loc: SourceLocation) -> TypedValue:
        lt, rt = left.ctype.strip(), right.ctype.strip()
        left_is_ptr = isinstance(lt, (CPointer, CArray))
        right_is_ptr = isinstance(rt, (CPointer, CArray))
        if op in ("==", "!=", "<", ">", "<=", ">="):
            lv, rv = left.value, right.value
            result = {
                "==": lv == rv, "!=": lv != rv, "<": lv < rv,
                ">": lv > rv, "<=": lv <= rv, ">=": lv >= rv,
            }[op]
            return int_value(1 if result else 0)
        if op == "+" and left_is_ptr and not right_is_ptr:
            step = _element_size(lt)
            return TypedValue((left.as_int() + right.as_int() * step) & 0xFFFFFFFF,
                              _as_pointer(left.ctype))
        if op == "+" and right_is_ptr and not left_is_ptr:
            step = _element_size(rt)
            return TypedValue((right.as_int() + left.as_int() * step) & 0xFFFFFFFF,
                              _as_pointer(right.ctype))
        if op == "-" and left_is_ptr and right_is_ptr:
            step = _element_size(lt)
            return int_value((left.as_int() - right.as_int()) // max(step, 1), INT)
        if op == "-" and left_is_ptr:
            step = _element_size(lt)
            return TypedValue((left.as_int() - right.as_int() * step) & 0xFFFFFFFF,
                              _as_pointer(left.ctype))
        # Plain arithmetic.
        result_type = _arith_result_type(left.ctype, right.ctype)
        lv, rv = left.value, right.value
        if op == "/" and rv == 0:
            raise MachineError("integer division by zero", loc)
        if op == "%" and rv == 0:
            raise MachineError("integer modulo by zero", loc)
        if op == "+":
            raw = lv + rv
        elif op == "-":
            raw = lv - rv
        elif op == "*":
            raw = lv * rv
        elif op == "/":
            raw = (lv / rv if isinstance(result_type.strip(), CFloat)
                   else _c_div(int(lv), int(rv)))
        elif op == "%":
            raw = _c_mod(int(lv), int(rv))
        elif op == "<<":
            raw = int(lv) << (int(rv) & 63)
        elif op == ">>":
            raw = int(lv) >> (int(rv) & 63)
        elif op == "&":
            raw = int(lv) & int(rv)
        elif op == "|":
            raw = int(lv) | int(rv)
        elif op == "^":
            raw = int(lv) ^ int(rv)
        else:
            raise MachineError(f"unknown binary operator {op!r}", loc)
        return TypedValue(convert(raw, result_type), result_type)

    def _eval_assign(self, expr: ast.Assign, frame: Frame | None) -> TypedValue:
        addr, ctype = self.lvalue(expr.target, frame)
        stripped = ctype.strip()
        value = self.evaluate(expr.value, frame)
        if expr.op != "=":
            op = expr.op[:-1]
            old = self._load_value(addr, ctype)
            self.counter.charge("binop")
            value = self._binary_op(op, old, value, expr.location)
        if isinstance(stripped, CStruct):
            self.counter.charge("bulk_per_word", times=max(1, stripped.size // 4))
            self.memory.memcpy(addr, value.as_int(), stripped.size)
            return TypedValue(addr, ctype)
        result = TypedValue(convert(value.value, ctype), ctype)
        self._store_scalar(addr, ctype, result.value)
        return result

    def _store_scalar(self, addr: int, ctype: CType, value) -> None:
        self.counter.charge("store")
        stripped = ctype.strip()
        if isinstance(stripped, CFloat):
            self.memory.store(addr, stripped.size, int(value))
            return
        self.memory.store(addr, load_size(ctype), int(convert(value, ctype)))

    def _eval_call(self, expr: ast.Call, frame: Frame | None) -> TypedValue:
        args = [self.evaluate(arg, frame) for arg in expr.args]
        func = expr.func
        if isinstance(func, ast.Ident):
            name = func.name
            if name in self.builtins or name in self.program.functions:
                return self.call_function(name, args, expr.location)
            binding = self._lookup(name, frame)
            if binding is None:
                if name in self._func_addr:
                    raise UndefinedSymbol(
                        f"call to function {name!r} which has no definition",
                        expr.location)
                raise UndefinedSymbol(f"call to undefined function {name!r}",
                                      expr.location)
            target = self._load_value(*binding)
            return self._call_address(target.as_int(), args, expr.location)
        target = self.evaluate(func, frame)
        return self._call_address(target.as_int(), args, expr.location)

    # ------------------------------------------------------------------
    # LValues
    # ------------------------------------------------------------------

    def lvalue(self, expr: ast.Expr, frame: Frame | None) -> tuple[int, CType]:
        if isinstance(expr, ast.Ident):
            binding = self._lookup(expr.name, frame)
            if binding is None:
                raise UndefinedSymbol(f"undefined identifier {expr.name!r}",
                                      expr.location)
            return binding
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self.evaluate(expr.operand, frame)
            target = _pointer_target(pointer.ctype)
            return pointer.as_int(), target
        if isinstance(expr, ast.Index):
            return self._lvalue_index(expr, frame)
        if isinstance(expr, ast.Member):
            return self._lvalue_member(expr, frame)
        if isinstance(expr, ast.Cast):
            addr, _ = self.lvalue(expr.operand, frame)
            return addr, expr.to_type
        if isinstance(expr, ast.Comma) and expr.exprs:
            # Instrumentation wraps checked lvalues as (check, lvalue); the
            # leading expressions run for their effects, the last designates
            # the location.
            for item in expr.exprs[:-1]:
                self.evaluate(item, frame)
            return self.lvalue(expr.exprs[-1], frame)
        raise MachineError(
            f"expression {type(expr).__name__} is not an lvalue", expr.location)

    def _lvalue_index(self, expr: ast.Index, frame: Frame | None) -> tuple[int, CType]:
        base_type = self.static_type(expr.base, frame)
        stripped = base_type.strip()
        if isinstance(stripped, CArray):
            base_addr, _ = self.lvalue(expr.base, frame)
            element = stripped.element
        else:
            pointer = self.evaluate(expr.base, frame)
            stripped = pointer.ctype.strip()
            element = _pointer_target(pointer.ctype)
            base_addr = pointer.as_int()
        index = self.evaluate(expr.index, frame).as_int()
        return base_addr + index * max(ctype_size(element), 1), element

    def _lvalue_member(self, expr: ast.Member, frame: Frame | None) -> tuple[int, CType]:
        if expr.arrow:
            base = self.evaluate(expr.base, frame)
            struct_type = _pointer_target(base.ctype).strip()
            base_addr = base.as_int()
        else:
            base_addr, base_type = self.lvalue(expr.base, frame)
            struct_type = base_type.strip()
        if not isinstance(struct_type, CStruct):
            raise MachineError(
                f"member access on non-struct type {struct_type}", expr.location)
        member = struct_type.field_named(expr.name)
        return base_addr + member.offset, member.type

    # ------------------------------------------------------------------
    # Static types (sizeof, lvalue classification)
    # ------------------------------------------------------------------

    def static_type(self, expr: ast.Expr, frame: Frame | None) -> CType:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.CharLit):
            return CHAR
        if isinstance(expr, ast.StrLit):
            return CArray(element=CHAR, length=len(expr.value) + 1)
        if isinstance(expr, ast.Ident):
            binding = self._lookup(expr.name, frame)
            if binding is not None:
                return binding[1]
            if expr.name in self._func_addr:
                ftype = self.program.function_type(expr.name) or CFunc(return_type=INT)
                return pointer_to(ftype)
            return INT
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                return _pointer_target(self.static_type(expr.operand, frame))
            if expr.op == "&":
                return pointer_to(self.static_type(expr.operand, frame))
            return self.static_type(expr.operand, frame)
        if isinstance(expr, ast.Postfix):
            return self.static_type(expr.operand, frame)
        if isinstance(expr, ast.Index):
            base = self.static_type(expr.base, frame).strip()
            if isinstance(base, CArray):
                return base.element
            return _pointer_target(base)
        if isinstance(expr, ast.Member):
            base = self.static_type(expr.base, frame).strip()
            if expr.arrow:
                base = _pointer_target(base).strip()
            if isinstance(base, CStruct) and base.has_field(expr.name):
                return base.field_named(expr.name).type
            return INT
        if isinstance(expr, ast.Cast):
            return expr.to_type
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Ident):
                ftype = self.program.function_type(expr.func.name)
                if ftype is not None:
                    return ftype.return_type
            func_type = self.static_type(expr.func, frame).strip()
            if isinstance(func_type, CPointer):
                inner = func_type.target.strip()
                if isinstance(inner, CFunc):
                    return inner.return_type
            return INT
        if isinstance(expr, ast.Binary):
            left = self.static_type(expr.left, frame)
            if left.strip().is_pointer() or isinstance(left.strip(), CArray):
                return left
            return self.static_type(expr.right, frame)
        if isinstance(expr, ast.Assign):
            return self.static_type(expr.target, frame)
        if isinstance(expr, ast.Conditional):
            return self.static_type(expr.then, frame)
        if isinstance(expr, (ast.SizeofExpr, ast.SizeofType)):
            return UINT
        if isinstance(expr, ast.Comma):
            return self.static_type(expr.exprs[-1], frame) if expr.exprs else INT
        return INT

    # ------------------------------------------------------------------
    # Name lookup
    # ------------------------------------------------------------------

    def _lookup(self, name: str, frame: Frame | None) -> tuple[int, CType] | None:
        if frame is not None and name in frame.locals:
            return frame.locals[name]
        if name in self.globals:
            return self.globals[name]
        return None


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def ctype_size(ctype: CType) -> int:
    """Size of a type, treating incomplete arrays as empty."""
    stripped = ctype.strip()
    if isinstance(stripped, CArray) and stripped.length is None:
        return 0
    return stripped.size


def _element_size(ctype: CType) -> int:
    if isinstance(ctype, CPointer):
        return max(ctype_size(ctype.target), 1)
    if isinstance(ctype, CArray):
        return max(ctype_size(ctype.element), 1)
    return 1


def _as_pointer(ctype: CType) -> CType:
    stripped = ctype.strip()
    if isinstance(stripped, CArray):
        return pointer_to(stripped.element)
    return ctype


def _pointer_target(ctype: CType) -> CType:
    stripped = ctype.strip()
    if isinstance(stripped, CPointer):
        return stripped.target
    if isinstance(stripped, CArray):
        return stripped.element
    return INT


def _arith_result_type(left: CType, right: CType) -> CType:
    try:
        return common_arithmetic_type(left, right)
    except Exception:
        return UINT


def _c_div(a: int, b: int) -> int:
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


def _find_label(stmts: Sequence[ast.Stmt], label: str) -> int | None:
    for index, stmt in enumerate(stmts):
        if isinstance(stmt, ast.Label) and stmt.name == label:
            return index
    return None
