"""The abstract machine's flat byte-addressable memory.

Every allocation (global, string literal, stack slot, heap object) becomes a
:class:`Block` placed at a unique 16-byte-aligned address in a single flat
address space.  Pointers are plain integers — addresses — so pointer
arithmetic, ``memcpy`` of structs containing pointers, and CCount's
"reference count per 16-byte chunk of memory" all behave like they would on
real hardware.

Freed blocks stay registered (their storage is retired, never reused for a
*different* address), so a load or store through a dangling pointer is
reliably detected as a :class:`MemoryFault` rather than silently reading
whatever object happened to be reallocated there.  This makes the machine a
strict oracle: if CCount misses a bad free, the machine still notices the
eventual dangling access.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from .errors import MemoryFault

#: Alignment of every block; also CCount's chunk size.
BLOCK_ALIGN = 16

#: Base of the ordinary data address space (NULL page below stays unmapped).
DATA_BASE = 0x0001_0000

#: Function "addresses" live in their own window so that calling data or
#: dereferencing a function pointer is caught immediately.
FUNCTION_BASE = 0x0800_0000
FUNCTION_STRIDE = 16


@dataclass
class Block:
    """One allocated object."""

    base: int
    size: int
    kind: str = "heap"           # "heap", "stack", "global", "rodata"
    name: str = ""
    freed: bool = False
    data: bytearray = field(default_factory=bytearray)
    alloc_site: str = ""

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def offset_of(self, addr: int) -> int:
        return addr - self.base

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        label = f" {self.name}" if self.name else ""
        return f"<Block {self.kind}{label} base=0x{self.base:x} size={self.size} {state}>"


class Memory:
    """The flat address space."""

    def __init__(self) -> None:
        self._blocks: dict[int, Block] = {}
        self._bases: list[int] = []
        self._next_addr = DATA_BASE
        self.bytes_allocated = 0
        self.bytes_freed = 0
        self.alloc_count = 0
        self.free_count = 0

    # -- allocation --------------------------------------------------------

    def alloc(self, size: int, kind: str = "heap", name: str = "",
              alloc_site: str = "") -> Block:
        """Allocate a new block of ``size`` bytes (minimum 1)."""
        size = max(int(size), 1)
        base = self._next_addr
        block = Block(base=base, size=size, kind=kind, name=name,
                      alloc_site=alloc_site)
        self._blocks[base] = block
        self._bases.append(base)          # bases are strictly increasing
        padded = _round_up(size, BLOCK_ALIGN) + BLOCK_ALIGN  # guard gap
        self._next_addr = base + padded
        self.bytes_allocated += size
        self.alloc_count += 1
        return block

    def free(self, block: Block) -> None:
        """Mark ``block`` freed.  Double frees raise a fault."""
        if block.freed:
            raise MemoryFault(f"double free of {block!r}")
        block.freed = True
        self.bytes_freed += block.size
        self.free_count += 1

    def free_addr(self, addr: int) -> Block:
        """Free the block whose *base* is ``addr`` (like ``kfree``)."""
        block = self._blocks.get(addr)
        if block is None:
            block = self.find_block(addr)
            if block is None:
                raise MemoryFault(f"free of unmapped address 0x{addr:x}")
            if block.base != addr:
                raise MemoryFault(
                    f"free of interior pointer 0x{addr:x} into {block!r}")
        self.free(block)
        return block

    # -- lookup --------------------------------------------------------------

    def find_block(self, addr: int) -> Block | None:
        """Return the block containing ``addr`` (live or freed), if any."""
        if addr < DATA_BASE or not self._bases:
            return None
        index = bisect_right(self._bases, addr) - 1
        if index < 0:
            return None
        block = self._blocks[self._bases[index]]
        if block.base <= addr < block.end:
            return block
        return None

    def require_block(self, addr: int, size: int = 1, write: bool = False) -> Block:
        """The block containing [addr, addr+size), raising faults otherwise."""
        if addr == 0:
            raise MemoryFault("NULL pointer dereference")
        block = self.find_block(addr)
        if block is None:
            raise MemoryFault(f"access to unmapped address 0x{addr:x}")
        if block.freed:
            raise MemoryFault(
                f"use after free: access to 0x{addr:x} inside {block!r}")
        if not block.contains(addr, size):
            kind = "write" if write else "read"
            raise MemoryFault(
                f"out-of-bounds {kind} of {size} bytes at 0x{addr:x} in {block!r}")
        return block

    def is_valid(self, addr: int, size: int = 1) -> bool:
        """Whether [addr, addr+size) lies inside a single live block."""
        if addr == 0:
            return False
        block = self.find_block(addr)
        return block is not None and not block.freed and block.contains(addr, size)

    # -- typed access ---------------------------------------------------------

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        """Load a little-endian integer of ``size`` bytes."""
        block = self.require_block(addr, size)
        offset = block.offset_of(addr)
        raw = bytes(block.data[offset:offset + size])
        return int.from_bytes(raw, "little", signed=signed)

    def store(self, addr: int, size: int, value: int) -> None:
        """Store a little-endian integer of ``size`` bytes."""
        block = self.require_block(addr, size, write=True)
        offset = block.offset_of(addr)
        value &= (1 << (8 * size)) - 1
        block.data[offset:offset + size] = value.to_bytes(size, "little")

    def load_bytes(self, addr: int, size: int) -> bytes:
        block = self.require_block(addr, size)
        offset = block.offset_of(addr)
        return bytes(block.data[offset:offset + size])

    def store_bytes(self, addr: int, data: bytes) -> None:
        block = self.require_block(addr, len(data), write=True)
        offset = block.offset_of(addr)
        block.data[offset:offset + len(data)] = data

    def load_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string starting at ``addr``."""
        block = self.require_block(addr, 1)
        offset = block.offset_of(addr)
        end = block.data.find(b"\0", offset)
        if end < 0:
            raise MemoryFault(f"unterminated string at 0x{addr:x} in {block!r}")
        raw = bytes(block.data[offset:min(end, offset + limit)])
        return raw.decode("latin-1")

    def memset(self, addr: int, value: int, size: int) -> None:
        if size <= 0:
            return
        block = self.require_block(addr, size, write=True)
        offset = block.offset_of(addr)
        block.data[offset:offset + size] = bytes([value & 0xFF]) * size

    def memcpy(self, dst: int, src: int, size: int) -> None:
        if size <= 0:
            return
        data = self.load_bytes(src, size)
        self.store_bytes(dst, data)

    # -- statistics -----------------------------------------------------------

    def live_blocks(self, kind: str | None = None) -> list[Block]:
        return [b for b in self._blocks.values()
                if not b.freed and (kind is None or b.kind == kind)]

    def all_blocks(self) -> list[Block]:
        return list(self._blocks.values())

    def live_bytes(self) -> int:
        return sum(b.size for b in self._blocks.values() if not b.freed)

    def __len__(self) -> int:
        return len(self._blocks)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def chunk_index(addr: int) -> int:
    """The CCount chunk (16-byte granule) index of an address."""
    return addr // BLOCK_ALIGN


def chunk_range(addr: int, size: int) -> range:
    """All chunk indices overlapping [addr, addr+size)."""
    if size <= 0:
        return range(0)
    return range(chunk_index(addr), chunk_index(addr + size - 1) + 1)
