"""The abstract machine: memory model, cost model, builtins, interpreter."""

from .builtins import Builtin, BuiltinRegistry, register_core_builtins
from .cycles import CostModel, CycleCounter, DEFAULT_COST_MODEL, SMP_COST_MODEL
from .errors import (
    CheckFailure,
    MachineError,
    MemoryFault,
    PanicError,
    StepLimitExceeded,
    UndefinedSymbol,
)
from .interpreter import Frame, HardwareState, Interpreter, ctype_size
from .memory import BLOCK_ALIGN, Block, Memory, chunk_index, chunk_range
from .program import Program, link_units
from .values import TypedValue, VOID_VALUE, convert, int_value, pointer_value

__all__ = [
    "Builtin", "BuiltinRegistry", "register_core_builtins",
    "CostModel", "CycleCounter", "DEFAULT_COST_MODEL", "SMP_COST_MODEL",
    "CheckFailure", "MachineError", "MemoryFault", "PanicError",
    "StepLimitExceeded", "UndefinedSymbol",
    "Frame", "HardwareState", "Interpreter", "ctype_size",
    "BLOCK_ALIGN", "Block", "Memory", "chunk_index", "chunk_range",
    "Program", "link_units",
    "TypedValue", "VOID_VALUE", "convert", "int_value", "pointer_value",
]
