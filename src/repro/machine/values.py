"""Typed run-time values.

The interpreter evaluates every expression to a :class:`TypedValue`: a plain
Python number paired with the MiniC static type it was produced at.  Pointers
are integers (flat addresses from :mod:`repro.machine.memory`); aggregate
(struct/array) expressions evaluate to the *address* of the aggregate, which
is all the assignment and call machinery needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..minic.ctypes import (
    CArray,
    CEnum,
    CFloat,
    CFunc,
    CInt,
    CPointer,
    CStruct,
    CType,
    CVoid,
    INT,
    UINT,
)

Number = Union[int, float]


@dataclass(frozen=True)
class TypedValue:
    """A run-time value together with its static type."""

    value: Number
    ctype: CType

    def as_int(self) -> int:
        return int(self.value)

    def as_bool(self) -> bool:
        return bool(self.value)

    def __repr__(self) -> str:
        return f"TypedValue({self.value!r}, {self.ctype})"


#: The canonical void result of expression statements and void calls.
VOID_VALUE = TypedValue(0, CVoid())


def int_value(value: int, ctype: CType = INT) -> TypedValue:
    return TypedValue(int(value), ctype)


def uint_value(value: int) -> TypedValue:
    return TypedValue(int(value) & 0xFFFFFFFF, UINT)


def pointer_value(addr: int, ctype: CType) -> TypedValue:
    return TypedValue(int(addr), ctype)


def convert(value: Number, to_type: CType) -> Number:
    """Convert ``value`` to the representation of ``to_type`` (C semantics)."""
    stripped = to_type.strip()
    if isinstance(stripped, CFloat):
        return float(value)
    if isinstance(stripped, CInt):
        return stripped.wrap(int(value))
    if isinstance(stripped, CEnum):
        return int(value) & 0xFFFFFFFF
    if isinstance(stripped, (CPointer, CArray, CFunc)):
        return int(value) & 0xFFFFFFFF
    if isinstance(stripped, CVoid):
        return 0
    if isinstance(stripped, CStruct):
        # Struct values are represented by their address.
        return int(value)
    return value


def load_size(ctype: CType) -> int:
    """How many bytes a scalar of ``ctype`` occupies in memory."""
    stripped = ctype.strip()
    if isinstance(stripped, (CPointer, CArray)):
        return 4
    return stripped.size


def is_signed(ctype: CType) -> bool:
    stripped = ctype.strip()
    if isinstance(stripped, CInt):
        return stripped.signed
    if isinstance(stripped, CEnum):
        return True
    return False


def truthy(value: TypedValue) -> bool:
    return bool(value.value)
