"""Linking: combine translation units into a runnable program image.

The mini-kernel (like the real one) is split across many source files that
share struct definitions and call across file boundaries.  The
:class:`Program` collects every function definition, prototype and global
variable, merges annotations between prototypes and definitions (a prototype
``void schedule(void) blocking;`` in one file must make the *definition*
blocking for BlockStop), and detects duplicate definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.attrs import AnnotationSet
from ..minic import ast_nodes as ast
from ..minic.ctypes import CFunc, CType
from ..minic.errors import SemanticError
from ..minic.symtab import TypeRegistry


@dataclass
class Program:
    """A fully linked program: functions, prototypes and globals by name."""

    registry: TypeRegistry = field(default_factory=TypeRegistry)
    units: list[ast.TranslationUnit] = field(default_factory=list)
    functions: dict[str, ast.FuncDef] = field(default_factory=dict)
    prototypes: dict[str, ast.Declaration] = field(default_factory=dict)
    globals: dict[str, ast.Declaration] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def add_unit(self, unit: ast.TranslationUnit) -> None:
        """Link one translation unit into the program."""
        self.units.append(unit)
        for decl in unit.decls:
            if isinstance(decl, ast.FuncDef):
                self._add_function(decl)
            elif isinstance(decl, ast.Declaration):
                self._add_declaration(decl)

    def _add_function(self, func: ast.FuncDef) -> None:
        existing = self.functions.get(func.name)
        if existing is not None:
            raise SemanticError(f"duplicate definition of function {func.name!r}",
                                func.location)
        self.functions[func.name] = func
        proto = self.prototypes.get(func.name)
        if proto is not None:
            _merge_annotations(func.annotations, proto.annotations)
            proto_type = proto.type.strip()
            if isinstance(proto_type, CFunc):
                _merge_annotations(func.annotations, proto_type.annotations)

    def _add_declaration(self, decl: ast.Declaration) -> None:
        if decl.is_typedef:
            return
        if decl.type.strip().is_function():
            previous = self.prototypes.get(decl.name)
            if previous is not None:
                _merge_annotations(decl.annotations, previous.annotations)
            self.prototypes[decl.name] = decl
            existing_def = self.functions.get(decl.name)
            if existing_def is not None:
                _merge_annotations(existing_def.annotations, decl.annotations)
                decl_type = decl.type.strip()
                if isinstance(decl_type, CFunc):
                    _merge_annotations(existing_def.annotations, decl_type.annotations)
            return
        if decl.storage == "extern" and decl.name in self.globals:
            return
        existing = self.globals.get(decl.name)
        if existing is not None and existing.init is not None and decl.init is not None:
            raise SemanticError(f"duplicate definition of global {decl.name!r}",
                                decl.location)
        if existing is None or (existing.init is None and decl.init is not None):
            self.globals[decl.name] = decl

    # -- queries --------------------------------------------------------------

    def function(self, name: str) -> ast.FuncDef | None:
        return self.functions.get(name)

    def function_type(self, name: str) -> CFunc | None:
        """The function type of ``name`` from its definition or prototype."""
        func = self.functions.get(name)
        if func is not None:
            stripped = func.type.strip()
            return stripped if isinstance(stripped, CFunc) else None
        proto = self.prototypes.get(name)
        if proto is not None:
            stripped = proto.type.strip()
            return stripped if isinstance(stripped, CFunc) else None
        return None

    def function_annotations(self, name: str) -> AnnotationSet:
        """Merged annotations for ``name`` from its definition and prototypes."""
        merged = AnnotationSet()
        func = self.functions.get(name)
        if func is not None:
            _merge_annotations(merged, func.annotations)
            stripped = func.type.strip()
            if isinstance(stripped, CFunc):
                _merge_annotations(merged, stripped.annotations)
        proto = self.prototypes.get(name)
        if proto is not None:
            _merge_annotations(merged, proto.annotations)
            stripped = proto.type.strip()
            if isinstance(stripped, CFunc):
                _merge_annotations(merged, stripped.annotations)
        return merged

    def global_type(self, name: str) -> CType | None:
        decl = self.globals.get(name)
        return decl.type if decl is not None else None

    def functions_subset(self, names: list[str] | None = None,
                         ) -> list[tuple[str, ast.FuncDef]]:
        """Defined functions as (name, def) pairs, optionally restricted.

        Names without a definition are skipped: the engine's per-unit shards
        pass prototype-only names freely.
        """
        if names is None:
            return list(self.functions.items())
        return [(name, self.functions[name]) for name in names
                if name in self.functions]

    def all_function_names(self) -> list[str]:
        names = set(self.functions) | set(self.prototypes)
        return sorted(names)

    def defined_function_names(self) -> list[str]:
        return sorted(self.functions)

    def total_source_lines(self) -> int:
        """Total number of source lines across the linked units."""
        total = 0
        for unit in self.units:
            last_line = 0
            from ..minic.visitor import walk
            for node in walk(unit):
                if node.location.line > last_line and node.location.filename == unit.filename:
                    last_line = node.location.line
            total += last_line
        return total


def _merge_annotations(target: AnnotationSet, source: AnnotationSet) -> None:
    """Add annotations from ``source`` that ``target`` does not already have."""
    for annotation in source:
        if not any(existing.kind is annotation.kind for existing in target):
            target.add(annotation)


def link_units(units: list[ast.TranslationUnit],
               registry: TypeRegistry | None = None) -> Program:
    """Link ``units`` (parsed against ``registry``) into a Program."""
    program = Program(registry=registry or TypeRegistry())
    for unit in units:
        program.add_unit(unit)
    return program
