"""Error types raised by the abstract machine.

The distinction between these error classes is load-bearing for the
evaluation: an *uninstrumented* kernel running buggy code dies with a
:class:`MemoryFault` (the moral equivalent of a hardware oops), whereas an
instrumented kernel fails earlier and deliberately with a
:class:`CheckFailure` raised by a Deputy/CCount/BlockStop run-time check.
"""

from __future__ import annotations

from ..minic.errors import SourceLocation


class MachineError(Exception):
    """Base class for all abstract-machine errors."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.message = message
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class MemoryFault(MachineError):
    """A wild memory access: out of bounds, unmapped, or use-after-free."""


class CheckFailure(MachineError):
    """A run-time check inserted by one of the soundness tools failed."""

    def __init__(self, message: str, tool: str = "deputy",
                 location: SourceLocation | None = None) -> None:
        self.tool = tool
        super().__init__(f"[{tool}] {message}", location)


class PanicError(MachineError):
    """The kernel called ``panic()``."""


class StepLimitExceeded(MachineError):
    """The interpreter hit its step budget (runaway loop protection)."""


class UndefinedSymbol(MachineError):
    """A call or reference to a symbol with no definition and no builtin."""
