"""Machine-level builtin functions.

These are the primitives the mini-kernel corpus is written against: raw
memory allocation, bulk memory operations, console output, the interrupt
flag, and a handful of diagnostics.  The soundness-tool runtimes
(:mod:`repro.deputy.runtime`, :mod:`repro.ccount.runtime`,
:mod:`repro.blockstop.runtime_checks`) register *additional* builtins on top
of these when they are installed on an interpreter.

A builtin is a Python callable ``fn(interp, args, location) -> TypedValue``
registered under a C-visible name.  Charging cycles is the builtin's own
responsibility so that bulk operations can charge per word moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from ..minic.ctypes import UINT, VOID, pointer_to
from ..minic.errors import SourceLocation
from .errors import PanicError
from .values import TypedValue, VOID_VALUE, int_value, pointer_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interpreter import Interpreter

BuiltinFn = Callable[["Interpreter", list[TypedValue], SourceLocation], TypedValue]


@dataclass
class Builtin:
    """A registered builtin."""

    name: str
    fn: BuiltinFn
    blocking: bool = False


class BuiltinRegistry:
    """Name → builtin mapping attached to each interpreter."""

    def __init__(self) -> None:
        self._builtins: dict[str, Builtin] = {}

    def register(self, name: str, fn: BuiltinFn, blocking: bool = False) -> None:
        self._builtins[name] = Builtin(name=name, fn=fn, blocking=blocking)

    def get(self, name: str) -> Builtin | None:
        return self._builtins.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._builtins

    def names(self) -> list[str]:
        return sorted(self._builtins)


# ---------------------------------------------------------------------------
# Core builtin implementations
# ---------------------------------------------------------------------------

def _bulk_cost(interp: "Interpreter", nbytes: int) -> None:
    words = max(1, (nbytes + 3) // 4)
    interp.counter.charge("bulk_per_word", times=words)


def _builtin_raw_alloc(interp: "Interpreter", args, loc) -> TypedValue:
    size = args[0].as_int()
    interp.counter.charge("alloc")
    block = interp.memory.alloc(size, kind="heap", alloc_site=str(loc))
    return pointer_value(block.base, pointer_to(VOID))


def _builtin_raw_free(interp: "Interpreter", args, loc) -> TypedValue:
    addr = args[0].as_int()
    interp.counter.charge("free")
    if addr == 0:
        return VOID_VALUE
    interp.memory.free_addr(addr)
    return VOID_VALUE


def _builtin_raw_size(interp: "Interpreter", args, loc) -> TypedValue:
    addr = args[0].as_int()
    block = interp.memory.find_block(addr)
    return int_value(block.size if block is not None else 0, UINT)


def _builtin_memset(interp: "Interpreter", args, loc) -> TypedValue:
    dst, value, size = args[0].as_int(), args[1].as_int(), args[2].as_int()
    _bulk_cost(interp, size)
    interp.memory.memset(dst, value, size)
    return pointer_value(dst, args[0].ctype)


def _builtin_memcpy(interp: "Interpreter", args, loc) -> TypedValue:
    dst, src, size = args[0].as_int(), args[1].as_int(), args[2].as_int()
    _bulk_cost(interp, size)
    interp.memory.memcpy(dst, src, size)
    return pointer_value(dst, args[0].ctype)


def _builtin_memcmp(interp: "Interpreter", args, loc) -> TypedValue:
    a, b, size = args[0].as_int(), args[1].as_int(), args[2].as_int()
    _bulk_cost(interp, size)
    if size <= 0:
        return int_value(0)
    left = interp.memory.load_bytes(a, size)
    right = interp.memory.load_bytes(b, size)
    if left == right:
        return int_value(0)
    return int_value(-1 if left < right else 1)


def _builtin_strlen(interp: "Interpreter", args, loc) -> TypedValue:
    addr = args[0].as_int()
    text = interp.memory.load_cstring(addr)
    _bulk_cost(interp, len(text) + 1)
    return int_value(len(text), UINT)


def _builtin_strcpy(interp: "Interpreter", args, loc) -> TypedValue:
    dst, src = args[0].as_int(), args[1].as_int()
    text = interp.memory.load_cstring(src)
    _bulk_cost(interp, len(text) + 1)
    interp.memory.store_bytes(dst, text.encode("latin-1") + b"\0")
    return pointer_value(dst, args[0].ctype)


def _builtin_strncpy(interp: "Interpreter", args, loc) -> TypedValue:
    dst, src, limit = args[0].as_int(), args[1].as_int(), args[2].as_int()
    text = interp.memory.load_cstring(src)[:max(limit, 0)]
    padded = text.encode("latin-1").ljust(max(limit, 0), b"\0")
    _bulk_cost(interp, max(limit, 1))
    interp.memory.store_bytes(dst, padded)
    return pointer_value(dst, args[0].ctype)


def _builtin_strcmp(interp: "Interpreter", args, loc) -> TypedValue:
    a = interp.memory.load_cstring(args[0].as_int())
    b = interp.memory.load_cstring(args[1].as_int())
    _bulk_cost(interp, min(len(a), len(b)) + 1)
    if a == b:
        return int_value(0)
    return int_value(-1 if a < b else 1)


def _builtin_strncmp(interp: "Interpreter", args, loc) -> TypedValue:
    limit = args[2].as_int()
    a = interp.memory.load_cstring(args[0].as_int())[:limit]
    b = interp.memory.load_cstring(args[1].as_int())[:limit]
    _bulk_cost(interp, max(1, min(len(a), len(b))))
    if a == b:
        return int_value(0)
    return int_value(-1 if a < b else 1)


def _format_printk(interp: "Interpreter", fmt: str, args: list[TypedValue]) -> str:
    out: list[str] = []
    arg_index = 0
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%" or i + 1 >= len(fmt):
            out.append(ch)
            i += 1
            continue
        # Skip width/flag characters between '%' and the conversion.
        j = i + 1
        while j < len(fmt) and fmt[j] in "0123456789lh-+. ":
            j += 1
        conv = fmt[j] if j < len(fmt) else "%"
        if conv == "%":
            out.append("%")
            i = j + 1
            continue
        arg = args[arg_index] if arg_index < len(args) else None
        arg_index += 1
        if arg is None:
            out.append("<missing>")
        elif conv in "di":
            out.append(str(arg.as_int()))
        elif conv == "u":
            out.append(str(arg.as_int() & 0xFFFFFFFF))
        elif conv in "xX":
            rendered = format(arg.as_int() & 0xFFFFFFFF, "x")
            out.append(rendered.upper() if conv == "X" else rendered)
        elif conv == "p":
            out.append(f"0x{arg.as_int() & 0xFFFFFFFF:08x}")
        elif conv == "c":
            out.append(chr(arg.as_int() & 0xFF))
        elif conv == "s":
            addr = arg.as_int()
            out.append(interp.memory.load_cstring(addr) if addr else "(null)")
        else:
            out.append(f"%{conv}")
        i = j + 1
    return "".join(out)


def _builtin_printk(interp: "Interpreter", args, loc) -> TypedValue:
    fmt = interp.memory.load_cstring(args[0].as_int())
    text = _format_printk(interp, fmt, args[1:])
    _bulk_cost(interp, len(text))
    interp.console.append(text)
    return int_value(len(text))


def _builtin_panic(interp: "Interpreter", args, loc) -> TypedValue:
    message = "kernel panic"
    if args:
        fmt = interp.memory.load_cstring(args[0].as_int())
        message = _format_printk(interp, fmt, args[1:])
    raise PanicError(f"kernel panic: {message}", loc)


def _builtin_bug(interp: "Interpreter", args, loc) -> TypedValue:
    raise PanicError("BUG() hit", loc)


def _builtin_warn(interp: "Interpreter", args, loc) -> TypedValue:
    message = ""
    if args:
        fmt = interp.memory.load_cstring(args[0].as_int())
        message = _format_printk(interp, fmt, args[1:])
    interp.warnings.append(message or "WARN() hit")
    return VOID_VALUE


# -- interrupt / hardware state ------------------------------------------------

def _builtin_cli(interp: "Interpreter", args, loc) -> TypedValue:
    interp.counter.charge("irq_toggle")
    interp.hw.irqs_enabled = False
    return VOID_VALUE


def _builtin_sti(interp: "Interpreter", args, loc) -> TypedValue:
    interp.counter.charge("irq_toggle")
    interp.hw.irqs_enabled = True
    return VOID_VALUE


def _builtin_save_flags(interp: "Interpreter", args, loc) -> TypedValue:
    return int_value(1 if interp.hw.irqs_enabled else 0, UINT)


def _builtin_restore_flags(interp: "Interpreter", args, loc) -> TypedValue:
    interp.counter.charge("irq_toggle")
    interp.hw.irqs_enabled = bool(args[0].as_int())
    return VOID_VALUE


def _builtin_irqs_disabled(interp: "Interpreter", args, loc) -> TypedValue:
    return int_value(0 if interp.hw.irqs_enabled else 1)


def _builtin_in_interrupt(interp: "Interpreter", args, loc) -> TypedValue:
    return int_value(1 if interp.hw.in_interrupt else 0)


def _builtin_might_sleep(interp: "Interpreter", args, loc) -> TypedValue:
    """Record (but do not fail on) a sleep attempt in atomic context.

    The uninstrumented kernel behaves like real hardware: sleeping with
    interrupts disabled is a latent bug that does not necessarily crash the
    machine.  BlockStop's inserted assertions, by contrast, panic loudly.
    """
    if not interp.hw.irqs_enabled or interp.hw.in_interrupt:
        interp.atomic_sleep_violations.append(str(loc))
    return VOID_VALUE


def _builtin_context_switch(interp: "Interpreter", args, loc) -> TypedValue:
    interp.counter.charge("context_switch")
    return VOID_VALUE


def _builtin_syscall_overhead(interp: "Interpreter", args, loc) -> TypedValue:
    interp.counter.charge("syscall_entry")
    return VOID_VALUE


def _builtin_cycles(interp: "Interpreter", args, loc) -> TypedValue:
    return int_value(interp.counter.cycles & 0xFFFFFFFF, UINT)


def _builtin_smp_processor_id(interp: "Interpreter", args, loc) -> TypedValue:
    return int_value(0)


def _builtin_copy_block(interp: "Interpreter", args, loc) -> TypedValue:
    """copy_to_user / copy_from_user share this bulk copy implementation."""
    dst, src, size = args[0].as_int(), args[1].as_int(), args[2].as_int()
    _bulk_cost(interp, size)
    interp.memory.memcpy(dst, src, size)
    return int_value(0, UINT)


def _builtin_noop(interp: "Interpreter", args, loc) -> TypedValue:
    return VOID_VALUE


def _builtin_memcpy_typed_noop(interp: "Interpreter", args, loc) -> TypedValue:
    return _builtin_memcpy(interp, args[:3], loc)


def _builtin_memset_typed_noop(interp: "Interpreter", args, loc) -> TypedValue:
    return _builtin_memset(interp, args[:3], loc)


def register_core_builtins(registry: BuiltinRegistry) -> None:
    """Register the machine-level builtins on ``registry``."""
    registry.register("__raw_alloc", _builtin_raw_alloc)
    registry.register("__raw_free", _builtin_raw_free)
    registry.register("__raw_size", _builtin_raw_size)
    registry.register("memset", _builtin_memset)
    registry.register("memcpy", _builtin_memcpy)
    registry.register("memmove", _builtin_memcpy)
    registry.register("memcmp", _builtin_memcmp)
    registry.register("strlen", _builtin_strlen)
    registry.register("strcpy", _builtin_strcpy)
    registry.register("strncpy", _builtin_strncpy)
    registry.register("strcmp", _builtin_strcmp)
    registry.register("strncmp", _builtin_strncmp)
    registry.register("printk", _builtin_printk)
    registry.register("panic", _builtin_panic)
    registry.register("BUG", _builtin_bug)
    registry.register("WARN", _builtin_warn)
    registry.register("__hw_cli", _builtin_cli)
    registry.register("__hw_sti", _builtin_sti)
    registry.register("__hw_save_flags", _builtin_save_flags)
    registry.register("__hw_restore_flags", _builtin_restore_flags)
    registry.register("__hw_irqs_disabled", _builtin_irqs_disabled)
    registry.register("__hw_in_interrupt", _builtin_in_interrupt)
    registry.register("__hw_might_sleep", _builtin_might_sleep)
    registry.register("__hw_context_switch", _builtin_context_switch)
    registry.register("__hw_syscall_overhead", _builtin_syscall_overhead)
    registry.register("__hw_cycles", _builtin_cycles)
    registry.register("smp_processor_id", _builtin_smp_processor_id)
    registry.register("__copy_block", _builtin_copy_block)
    # CCount hooks default to no-ops so that the converted corpus (which
    # contains delayed-free scopes, RTTI calls and typed memcpy/memset) also
    # runs on a plain kernel build; installing the CCount runtime replaces
    # these with the real reference-counting implementations.
    registry.register("__ccount_delay_begin", _builtin_noop)
    registry.register("__ccount_delay_end", _builtin_noop)
    registry.register("__ccount_rtti", _builtin_noop)
    registry.register("__ccount_rc_inc", _builtin_noop)
    registry.register("__ccount_rc_dec", _builtin_noop)
    registry.register("__ccount_memcpy", _builtin_memcpy_typed_noop)
    registry.register("__ccount_memset", _builtin_memset_typed_noop)
    # Same story for BlockStop's manual assertion: a no-op on a plain build,
    # replaced with the real panic-if-atomic check when BlockStop's runtime
    # is installed.
    registry.register("__blockstop_assert_irqs_enabled", _builtin_noop)
