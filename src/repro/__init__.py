"""repro: sound program analysis for a simulated Linux-like kernel.

A reproduction of "Beyond Bug-Finding: Sound Program Analysis for Linux"
(HotOS 2007).  The package provides:

* :mod:`repro.minic` — a kernel-flavoured C frontend (lexer, parser, types);
* :mod:`repro.machine` — an abstract machine with a deterministic cycle model;
* :mod:`repro.deputy` — dependent-pointer type checking with run-time checks;
* :mod:`repro.ccount` — reference-count verification of manual deallocation;
* :mod:`repro.blockstop` — call-graph analysis of blocking in atomic context;
* :mod:`repro.analyses` — the paper's proposed future analyses;
* :mod:`repro.repository` — the shared annotation repository;
* :mod:`repro.kernel` — the mini-kernel corpus and build system;
* :mod:`repro.hbench` — the hbench-like micro-benchmark suite;
* :mod:`repro.harness` — experiment drivers that regenerate the paper's table
  and in-text evaluation numbers.
"""

__version__ = "1.1.0"

__all__ = [
    "minic", "annotations", "machine", "deputy", "ccount", "blockstop",
    "analyses", "repository", "kernel", "hbench", "harness",
]
